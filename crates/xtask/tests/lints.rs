//! End-to-end lint tests: each rule must fire on its known-bad fixture
//! tree, stay quiet on clean code, and honor the escape hatch.

use std::path::{Path, PathBuf};

use gtv_xtask::{run_lint, Finding, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn lint(name: &str) -> Vec<Finding> {
    run_lint(&fixture(name)).expect("fixture tree should be readable")
}

fn lines_for(findings: &[Finding], rule: Rule) -> Vec<usize> {
    findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
}

#[test]
fn l1_flags_every_panic_token_and_honors_the_escape_hatch() {
    let findings = lint("l1_panic");
    assert!(findings.iter().all(|f| f.rule == Rule::Panic), "{findings:?}");
    // unwrap, expect, panic!, unreachable!, todo! — one finding each; the
    // suppressed unwrap (line 25) and the #[cfg(test)] unwrap are exempt.
    assert_eq!(lines_for(&findings, Rule::Panic), vec![4, 8, 12, 16, 20], "{findings:?}");
}

#[test]
fn l2_flags_ambient_randomness_and_clocks_but_not_bench_or_tests() {
    let findings = lint("l2_determinism");
    assert!(findings.iter().all(|f| f.rule == Rule::Determinism), "{findings:?}");
    assert!(
        findings.iter().all(|f| {
            f.file == Path::new("crates/nn/src/layers.rs")
                || f.file == Path::new("crates/vfl/src/worker.rs")
                || f.file == Path::new("crates/tensor/src/kernels.rs")
                || f.file == Path::new("crates/ml/src/hand_simd.rs")
        }),
        "crates/bench, the sanctioned pool and the sanctioned simd module must be exempt: {findings:?}"
    );
    // thread_rng, from_entropy, SystemTime::now, Instant::now.
    let layers: Vec<usize> = findings
        .iter()
        .filter(|f| f.file == Path::new("crates/nn/src/layers.rs"))
        .map(|f| f.line)
        .collect();
    assert_eq!(layers, vec![4, 9, 13, 17], "{findings:?}");
    // Ad-hoc thread::spawn, thread::Builder and a hand-rolled pipelined
    // fan-out outside the pool; the identical spawns in
    // crates/tensor/src/pool.rs stay quiet.
    let worker: Vec<usize> = findings
        .iter()
        .filter(|f| f.file == Path::new("crates/vfl/src/worker.rs"))
        .map(|f| f.line)
        .collect();
    assert_eq!(worker, vec![4, 9, 17], "{findings:?}");
    assert!(
        findings
            .iter()
            .filter(|f| f.file == Path::new("crates/vfl/src/worker.rs"))
            .all(|f| f.message.contains("deterministic worker pool")),
        "{findings:?}"
    );
    // Raw allocator calls in the tensor kernel hot path: Vec::with_capacity
    // and vec![0.0; n]. The escape-hatched cold-path alloc and the
    // #[cfg(test)] scratch buffer stay quiet, as does the string literal
    // mentioning both tokens.
    let kernels: Vec<usize> = findings
        .iter()
        .filter(|f| f.file == Path::new("crates/tensor/src/kernels.rs"))
        .map(|f| f.line)
        .collect();
    assert_eq!(kernels, vec![4, 12], "{findings:?}");
    assert!(
        findings
            .iter()
            .filter(|f| f.file == Path::new("crates/tensor/src/kernels.rs"))
            .all(|f| f.message.contains("pool_mem::take")),
        "{findings:?}"
    );
    // Hand-rolled lane code (`[f32; 8]` on line 4, `chunks_exact(8)` on
    // line 5) outside crates/tensor/src/simd.rs; the escape-hatched
    // scratch table, the #[cfg(test)] lanes, the string literal and the
    // identical tokens inside the sanctioned simd module stay quiet.
    let lanes: Vec<usize> = findings
        .iter()
        .filter(|f| f.file == Path::new("crates/ml/src/hand_simd.rs"))
        .map(|f| f.line)
        .collect();
    assert_eq!(lanes, vec![4, 5], "{findings:?}");
    assert!(
        findings
            .iter()
            .filter(|f| f.file == Path::new("crates/ml/src/hand_simd.rs"))
            .all(|f| f.message.contains("gtv_tensor::simd")),
        "{findings:?}"
    );
}

#[test]
fn l3_flags_float_equality_only_in_metric_crates() {
    let findings = lint("l3_float_eq");
    assert!(findings.iter().all(|f| f.rule == Rule::FloatEq), "{findings:?}");
    assert!(
        findings.iter().all(|f| f.file == Path::new("crates/metrics/src/divergence.rs")),
        "crates/core must be out of L3 scope: {findings:?}"
    );
    // `v == 1.0`, `0.5 == v`, `v != 2.0f32`; int compare and the
    // suppressed sentinel compare are exempt.
    assert_eq!(lines_for(&findings, Rule::FloatEq), vec![4, 8, 12], "{findings:?}");
}

#[test]
fn l4_flags_message_variants_missing_encode_or_decode_arms() {
    let findings = lint("l4_wire");
    assert!(findings.iter().all(|f| f.rule == Rule::Wire), "{findings:?}");
    let mut missing: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    missing.sort_unstable();
    assert_eq!(
        missing,
        vec![
            "`Message::GenSlice` has no arm in `decode`",
            "`Message::Orphan` has no arm in `decode`",
            "`Message::Orphan` has no arm in `encode`",
        ],
        "{findings:?}"
    );
}

#[test]
fn l5_flags_bare_clippy_allows_but_not_justified_ones() {
    let findings = lint("l5_allow");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::AllowJustification);
    assert_eq!(findings[0].line, 3);
}

#[test]
fn malformed_escape_hatch_does_not_suppress_and_is_reported() {
    let findings = lint("malformed_allow");
    // The justification-free allow is reported AND the unwrap it failed
    // to cover still stands.
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.line == 5 && f.message.contains("without `-- <justification>`")));
    assert!(findings.iter().any(|f| f.line == 6 && f.message.contains("`unwrap`")));
}

#[test]
fn l6_flags_server_reachability_carriers_and_sinks() {
    let findings = lint("privacy_flow");
    assert!(findings.iter().all(|f| f.rule == Rule::PrivacyFlow), "{findings:?}");
    let locations: Vec<(&str, usize)> =
        findings.iter().map(|f| (f.file.to_str().unwrap(), f.line)).collect();
    assert_eq!(
        locations,
        vec![
            // Client-side fn logging shuffle-seed material.
            ("crates/cond/src/leak.rs", 5),
            // Server fn reaching a secret root through the call graph.
            ("crates/core/src/server.rs", 8),
            // Server fn referencing a secret root directly.
            ("crates/core/src/server.rs", 12),
            // Server fn holding a type that contains a SharedShuffler.
            ("crates/core/src/server.rs", 18),
        ],
        "{findings:?}"
    );
    assert!(findings.iter().any(|f| f.message.contains("`println!` inside `announce_seed`")));
    assert!(findings.iter().any(|f| f.message.contains("reaches `collect_share`")));
    assert!(findings.iter().any(|f| f.message.contains("type-containment closure")));
}

#[test]
fn l7_flags_literal_and_unnamed_seeds_but_not_bench_or_tests() {
    let findings = lint("rng_provenance");
    assert!(findings.iter().all(|f| f.rule == Rule::RngProvenance), "{findings:?}");
    assert!(
        findings.iter().all(|f| f.file == Path::new("crates/nn/src/init.rs")),
        "crates/bench and #[cfg(test)] must be exempt: {findings:?}"
    );
    // seed_from_u64(42), seed_from_u64(x ^ 17), from_seed([0u8; 32]) and
    // seed_from_u64(block as u64); the pool-style per-block derivation
    // `base_seed ^ block as u64` carries seed provenance and stays quiet.
    assert_eq!(lines_for(&findings, Rule::RngProvenance), vec![4, 9, 14, 24], "{findings:?}");
}

#[test]
fn l8_flags_unguarded_narrowing_casts_and_honors_the_escape_hatch() {
    let findings = lint("cast_safety");
    assert!(findings.iter().all(|f| f.rule == Rule::CastSafety), "{findings:?}");
    // payload.len() as u32 and kind as u8; the justified party_byte cast
    // is suppressed by its escape hatch.
    assert_eq!(lines_for(&findings, Rule::CastSafety), vec![4, 9], "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("`as u32` of `payload`")));
    assert!(findings.iter().any(|f| f.message.contains("`as u8` of `kind`")));
}

#[test]
fn l9_flags_upward_references_in_imports_and_paths() {
    let findings = lint("layering");
    assert!(findings.iter().all(|f| f.rule == Rule::Layering), "{findings:?}");
    // use gtv_nn::Dense (import) and gtv_vfl::transport (qualified path);
    // the #[cfg(test)] import of gtv_cli is dev-dependency territory.
    assert_eq!(lines_for(&findings, Rule::Layering), vec![3, 6], "{findings:?}");
    assert!(findings.iter().all(|f| f.message.contains("not below `gtv_tensor`")));
}

#[test]
fn l10_flags_out_of_order_direction_and_machine_drift() {
    let findings = lint("protocol_order");
    assert!(findings.iter().all(|f| f.rule == Rule::ProtocolOrder), "{findings:?}");
    let locations: Vec<(&str, usize)> =
        findings.iter().map(|f| (f.file.to_str().unwrap(), f.line)).collect();
    assert_eq!(
        locations,
        vec![
            // RoundStart sent after the GenSlice fan-out.
            ("crates/core/src/trainer.rs", 15),
            // The server sending the client-only condition upload.
            ("crates/core/src/trainer.rs", 21),
            // Gathering SynthLogits straight after RoundStart (recv side).
            ("crates/core/src/trainer.rs", 29),
            // MaskedUpload has wire arms but no edge in the machine.
            ("crates/vfl/src/wire.rs", 16),
        ],
        "{findings:?}"
    );
    assert!(findings.iter().any(|f| f.message.contains("`RoundStart` cannot follow `GenSlice`")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`server` must not send `Message::CondUpload`")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`SynthLogits` cannot follow `RoundStart`")));
    assert!(findings.iter().any(|f| f
        .message
        .contains("`Message::MaskedUpload` has no edge in the protocol machine")));
}

#[test]
fn serve_sources_are_covered_by_panic_determinism_cast_and_protocol_rules() {
    let findings = lint("serve_rules");
    let locations: Vec<(&str, usize, Rule)> =
        findings.iter().map(|f| (f.file.to_str().unwrap(), f.line, f.rule)).collect();
    assert_eq!(
        locations,
        vec![
            // The engine is an L1 protocol path and must stay tick-driven.
            ("crates/serve/src/engine.rs", 5, Rule::Panic),
            ("crates/serve/src/engine.rs", 9, Rule::Determinism),
            // Every serve source is in L8 scope, not just `wire.rs`.
            ("crates/serve/src/registry.rs", 5, Rule::CastSafety),
            // A reply before the handshake completes breaks the session NFA.
            ("crates/serve/src/server.rs", 9, Rule::ProtocolOrder),
            // A frame variant with no edge in the serving machine.
            ("crates/serve/src/wire.rs", 11, Rule::ProtocolOrder),
        ],
        "{findings:?}"
    );
    assert!(findings.iter().any(|f| f.message.contains("`SynthRows` cannot follow `SynthHello`")));
    assert!(findings.iter().any(|f| f
        .message
        .contains("`ServeFrame::SynthCancel` has no edge in the serving machine")));
}

#[test]
fn json_output_is_deterministic_and_sorted_across_runs() {
    let render = |findings: &[Finding]| -> String {
        findings.iter().map(Finding::to_json).collect::<Vec<_>>().join("\n")
    };
    let first = lint("protocol_order");
    let second = lint("protocol_order");
    assert!(!first.is_empty(), "the regression needs a fixture with findings");
    assert_eq!(render(&first), render(&second), "two runs must be byte-identical");
    let keys: Vec<(String, usize, &'static str)> =
        first.iter().map(|f| (f.file.display().to_string(), f.line, f.rule.id())).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must be sorted by (file, line, rule)");
}

#[test]
fn lint_reports_per_pass_timings_within_budget() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf();
    let (_, timings) = gtv_xtask::run_lint_timed(&root).expect("workspace should be readable");
    let labels: Vec<&str> = timings.iter().map(|t| t.label).collect();
    assert_eq!(
        labels,
        vec![
            "parse",
            "dataflow",
            "L1/panic",
            "L2/determinism",
            "L3/float-eq",
            "L4/wire",
            "L5/allow-justification",
            "L6/privacy-flow",
            "L7/rng-provenance",
            "L8/cast-safety",
            "L9/layering",
            "L10/protocol-order",
            "L11/raw-egress",
            "L12/nondet-flow",
        ]
    );
    let total: f64 = timings.iter().map(|t| t.millis).sum();
    assert!(total < 5000.0, "lint must stay inside the pre-commit budget: {total:.1} ms");
    for t in &timings {
        assert!(t.millis < 4000.0, "pass {} blew its per-pass budget: {:.1} ms", t.label, t.millis);
    }
}

#[test]
fn l11_flags_raw_column_egress_through_flows_not_names() {
    let findings = lint("l11_egress");
    assert!(findings.iter().all(|f| f.rule == Rule::RawEgress), "{findings:?}");
    // leak_direct, leak_rebound (let-rebinding), leak_field (field
    // projection), leak_via_return (interprocedural summary),
    // leak_through_encode_call (wire-encode sink); the sanctioned-encoder
    // paths and the justified allow stay quiet.
    assert_eq!(lines_for(&findings, Rule::RawEgress), vec![5, 11, 17, 26, 31], "{findings:?}");
}

#[test]
fn l12_flags_nondeterminism_reaching_seeds_kernels_and_wire() {
    let findings = lint("l12_nondet");
    assert!(findings.iter().all(|f| f.rule == Rule::NondetFlow), "{findings:?}");
    // env-derived seed, thread-id into a kernel, HashMap-iteration order
    // into a wire payload; the sorted payload and the justified allow stay
    // quiet.
    assert_eq!(lines_for(&findings, Rule::NondetFlow), vec![7, 13, 25], "{findings:?}");
}

#[test]
fn sarif_output_is_byte_stable_across_runs() {
    let sarif = gtv_xtask::report::to_sarif(&lint("l11_egress"));
    assert_eq!(sarif, gtv_xtask::report::to_sarif(&lint("l11_egress")));
    assert!(sarif.contains("\"ruleId\":\"raw-egress\""), "{sarif}");
    assert!(sarif.contains("\"name\":\"L12/nondet-flow\""), "{sarif}");
}

#[test]
fn baseline_round_trip_suppresses_known_findings_byte_stably() {
    let findings = lint("l12_nondet");
    let text = gtv_xtask::report::render_baseline(&findings);
    assert_eq!(text, gtv_xtask::report::render_baseline(&lint("l12_nondet")));
    let outcome = gtv_xtask::report::apply_baseline(&findings, &text);
    assert!(outcome.fresh.is_empty(), "{:?}", outcome.fresh);
    assert_eq!(outcome.matched, findings.len());
    assert_eq!(outcome.stale, 0);
}

#[test]
fn clean_tree_produces_no_findings() {
    let findings = lint("clean");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn real_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf();
    let findings = run_lint(&root).expect("workspace should be readable");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn nonexistent_root_is_an_error_not_a_clean_pass() {
    let err = run_lint(Path::new("/nonexistent/gtv-xtask-root")).unwrap_err();
    assert!(err.to_string().contains("not a directory"), "{err}");
}
