//! Drift tests tying the declared protocol machine to the real wire
//! format: the machine and `enum Message` must stay in bijection, every
//! edge must be reachable, and the privacy-critical directions (§3.1.5:
//! the server never sees the shuffle seed) must hold in the declaration
//! itself, not just in the code the L10 pass checks against it.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use gtv_xtask::protocol::{Dir, PROTOCOL_EDGES, PROTOCOL_STATES, SERVE_EDGES, SERVE_STATES};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn every_edge_connects_declared_states() {
    let states: HashSet<&str> = PROTOCOL_STATES.iter().copied().collect();
    for e in PROTOCOL_EDGES {
        assert!(states.contains(e.from), "edge `{}` leaves undeclared state `{}`", e.msg, e.from);
        assert!(states.contains(e.to), "edge `{}` enters undeclared state `{}`", e.msg, e.to);
    }
}

#[test]
fn machine_and_wire_enum_are_in_bijection() {
    let variants = gtv_xtask::message_variants(&workspace_root())
        .expect("crates/vfl/src/wire.rs should parse");
    assert!(!variants.is_empty(), "wire.rs must declare enum Message");
    let declared: HashSet<&str> = variants.iter().map(String::as_str).collect();
    let machine: HashSet<&str> = PROTOCOL_EDGES.iter().map(|e| e.msg).collect();
    for v in &declared {
        assert!(machine.contains(v), "`Message::{v}` has no edge in the protocol machine");
    }
    for m in &machine {
        assert!(declared.contains(m), "machine edge `{m}` names no real Message variant");
    }
}

#[test]
fn every_edge_is_reachable_from_idle() {
    // BFS over states from Idle; an edge is reachable iff its source is.
    let mut reached: HashSet<&str> = HashSet::new();
    reached.insert("Idle");
    loop {
        let grown: Vec<&str> = PROTOCOL_EDGES
            .iter()
            .filter(|e| reached.contains(e.from) && !reached.contains(e.to))
            .map(|e| e.to)
            .collect();
        if grown.is_empty() {
            break;
        }
        reached.extend(grown);
    }
    for state in PROTOCOL_STATES {
        assert!(reached.contains(state), "state `{state}` is unreachable from Idle");
    }
    for e in PROTOCOL_EDGES {
        assert!(reached.contains(e.from), "edge `{}` can never fire", e.msg);
    }
}

#[test]
fn privacy_critical_directions_hold_in_the_declaration() {
    for e in PROTOCOL_EDGES {
        if e.msg == "ShuffleSeedShare" || e.msg == "IndexShare" {
            assert_eq!(
                e.dir,
                Dir::ClientToClient,
                "`{}` must stay client↔client; the server must never be an endpoint (§3.1.5)",
                e.msg
            );
        }
    }
    assert!(
        PROTOCOL_EDGES
            .iter()
            .any(|e| e.msg == "RoundStart" && e.dir == Dir::ServerToClient && e.from == "Idle"),
        "rounds must open server-side from Idle"
    );
}

#[test]
fn every_variant_has_exactly_one_phase_per_direction() {
    // The machine is deterministic per (variant, source state): no two
    // edges may share both label and source, or NFA simulation would hide
    // a genuine ambiguity in the declaration.
    let mut seen: HashSet<(&str, &str)> = HashSet::new();
    for e in PROTOCOL_EDGES {
        assert!(
            seen.insert((e.msg, e.from)),
            "duplicate edge `{}` out of `{}`: the machine must be deterministic",
            e.msg,
            e.from
        );
    }
}

#[test]
fn serve_machine_and_wire_enum_are_in_bijection() {
    let variants = gtv_xtask::serve_frame_variants(&workspace_root())
        .expect("crates/serve/src/wire.rs should parse");
    assert!(!variants.is_empty(), "serve wire.rs must declare enum ServeFrame");
    let declared: HashSet<&str> = variants.iter().map(String::as_str).collect();
    let machine: HashSet<&str> = SERVE_EDGES.iter().map(|e| e.msg).collect();
    for v in &declared {
        assert!(machine.contains(v), "`ServeFrame::{v}` has no edge in the serving machine");
    }
    for m in &machine {
        assert!(
            declared.contains(m),
            "serving machine edge `{m}` names no real ServeFrame variant"
        );
    }
}

#[test]
fn every_serve_edge_is_reachable_from_sess_idle() {
    let mut reached: HashSet<&str> = HashSet::new();
    reached.insert("SessIdle");
    loop {
        let grown: Vec<&str> = SERVE_EDGES
            .iter()
            .filter(|e| reached.contains(e.from) && !reached.contains(e.to))
            .map(|e| e.to)
            .collect();
        if grown.is_empty() {
            break;
        }
        reached.extend(grown);
    }
    for state in SERVE_STATES {
        assert!(reached.contains(state), "state `{state}` is unreachable from SessIdle");
    }
    for e in SERVE_EDGES {
        assert!(reached.contains(e.from), "serve edge `{}` can never fire", e.msg);
    }
}

#[test]
fn serve_machine_is_deterministic_and_request_flow_is_client_initiated() {
    let mut seen: HashSet<(&str, &str)> = HashSet::new();
    for e in SERVE_EDGES {
        assert!(
            seen.insert((e.msg, e.from)),
            "duplicate serve edge `{}` out of `{}`: the machine must be deterministic",
            e.msg,
            e.from
        );
    }
    // Clients drive the session (hello, request); everything the server
    // sends is a reply. A server-initiated frame would let the engine push
    // rows nobody asked for.
    for e in SERVE_EDGES {
        let expect = matches!(e.msg, "SynthHello" | "SynthRequest");
        assert_eq!(
            e.dir == Dir::ClientToServer,
            expect,
            "edge `{}` has direction {:?}",
            e.msg,
            e.dir
        );
    }
}
