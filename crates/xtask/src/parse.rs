//! Item-level recursive-descent parser over lexed source.
//!
//! Consumes the comment/string-stripped [`LexedLine`]s produced by the
//! lexer and extracts the item structure the semantic passes (L6–L9) need:
//! `use` imports, structs/enums with field types, and functions with their
//! parameter names, `impl` self-type, module path and full body token
//! stream. The parser is best-effort and infallible: unrecognized syntax is
//! skipped token-by-token, so a partially understood file still yields
//! every item the parser *did* recognize.

use crate::LexedLine;

/// Token class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal.
    Num,
    /// Single punctuation character.
    Punct,
}

/// One source token with its origin line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token text (one char for punctuation).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// Whether the token sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// Token class.
    pub kind: TokKind,
}

impl Token {
    /// Whether this token's text matches exactly (any kind).
    pub(crate) fn is(&self, text: &str) -> bool {
        self.text == text
    }

    /// Whether this is an identifier token with the given text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }
}

/// A `use` declaration (all path idents in order, group braces flattened).
#[derive(Debug, Clone)]
pub struct Import {
    /// Every identifier in the use path, in source order.
    pub segments: Vec<String>,
    /// 1-based line of the `use` keyword.
    pub line: usize,
    /// Whether the import sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// One struct field or enum-variant field.
#[derive(Debug, Clone)]
pub struct Field {
    /// Owning enum variant, if any.
    pub variant: Option<String>,
    /// Field name (`0`, `1`, … for tuple fields).
    pub name: String,
    /// Identifiers appearing in the field's type.
    pub type_idents: Vec<String>,
    /// 1-based line.
    pub line: usize,
}

/// A struct or enum definition.
#[derive(Debug, Clone)]
pub struct TypeItem {
    /// Type name.
    pub name: String,
    /// 1-based line of the definition.
    pub line: usize,
    /// Whether this is an `enum` (else `struct`).
    pub is_enum: bool,
    /// Fields (for enums: all variant fields, tagged with their variant).
    pub fields: Vec<Field>,
    /// Enum variant names (empty for structs).
    pub variants: Vec<String>,
}

/// A function item with its body token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the fn sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// The `impl` block's self type, if inside one.
    pub self_type: Option<String>,
    /// Enclosing inline-module path (file modules come from the file path).
    pub module: Vec<String>,
    /// Parameter names, in declaration order. The dataflow engine seeds
    /// its taint environment from these (`PARAM(i)` provenance bits).
    pub params: Vec<String>,
    /// Every token of the body block (exclusive of the outer braces).
    pub body: Vec<Token>,
}

impl FnItem {
    /// Whether the body references `ident` as an identifier token.
    pub fn references(&self, ident: &str) -> bool {
        self.body.iter().any(|t| t.is_ident(ident))
    }

    /// Line of the first body reference to `ident`, if any.
    pub fn reference_line(&self, ident: &str) -> Option<usize> {
        self.body.iter().find(|t| t.is_ident(ident)).map(|t| t.line)
    }
}

/// The parsed items of one source file.
#[derive(Debug, Clone, Default)]
pub struct FileAst {
    /// `use` declarations.
    pub imports: Vec<Import>,
    /// Struct/enum definitions.
    pub types: Vec<TypeItem>,
    /// Function items (free fns, impl methods, trait defaults).
    pub fns: Vec<FnItem>,
}

/// Splits the blanked code of `lines` into a token stream.
pub fn tokenize(lines: &[LexedLine]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    line: idx + 1,
                    in_test: line.in_test,
                    kind: TokKind::Ident,
                });
            } else if c.is_ascii_digit() {
                let start = i;
                i += 1;
                while i < chars.len() {
                    let d = chars[i];
                    let continues = d.is_alphanumeric()
                        || d == '_'
                        || (d == '.'
                            && chars.get(i + 1).map(|n| n.is_ascii_digit()).unwrap_or(false));
                    if !continues {
                        break;
                    }
                    i += 1;
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    line: idx + 1,
                    in_test: line.in_test,
                    kind: TokKind::Num,
                });
            } else {
                out.push(Token {
                    text: c.to_string(),
                    line: idx + 1,
                    in_test: line.in_test,
                    kind: TokKind::Punct,
                });
                i += 1;
            }
        }
    }
    out
}

/// Parses one file's lexed lines into its item structure.
pub fn parse_file(lines: &[LexedLine]) -> FileAst {
    let tokens = tokenize(lines);
    let mut parser = Parser { t: &tokens, i: 0, out: FileAst::default() };
    parser.parse_items(tokens.len(), &[], None);
    parser.out
}

struct Parser<'a> {
    t: &'a [Token],
    i: usize,
    out: FileAst,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.t.get(self.i)
    }

    fn text(&self) -> &str {
        self.t.get(self.i).map_or("", |t| t.text.as_str())
    }

    /// Index of the `}` matching the `{` at `open` (or the end of input).
    fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0i64;
        let mut j = open;
        while j < self.t.len() {
            match self.t[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.t.len()
    }

    /// Skips a balanced `<...>` generics group starting at the cursor.
    fn skip_generics(&mut self) {
        if self.text() != "<" {
            return;
        }
        let mut depth = 0i64;
        while self.i < self.t.len() {
            match self.t[self.i].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    // `->` inside `Fn(..) -> T` bounds is not a closer.
                    let arrow = self.i > 0 && self.t[self.i - 1].is("-");
                    if !arrow {
                        depth -= 1;
                        if depth == 0 {
                            self.i += 1;
                            return;
                        }
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Skips an attribute `#[...]` / `#![...]` at the cursor.
    fn skip_attr(&mut self) {
        self.i += 1; // '#'
        if self.text() == "!" {
            self.i += 1;
        }
        if self.text() == "[" {
            let mut depth = 0i64;
            while self.i < self.t.len() {
                match self.t[self.i].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            self.i += 1;
                            return;
                        }
                    }
                    _ => {}
                }
                self.i += 1;
            }
        }
    }

    /// Skips to the `;` terminating a const/static/type/use-like item,
    /// honoring nested brackets and brace blocks in initializers.
    fn skip_to_semi(&mut self, end: usize) {
        let mut depth = 0i64;
        while self.i < end {
            match self.t[self.i].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => {
                    self.i += 1;
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    fn parse_items(&mut self, end: usize, module: &[String], self_type: Option<&str>) {
        while self.i < end {
            match self.text() {
                "#" => self.skip_attr(),
                "use" => self.parse_use(end),
                "mod" => self.parse_mod(end, module, self_type),
                "fn" => self.parse_fn(end, module, self_type),
                "struct" | "enum" | "union" => self.parse_type(end),
                "impl" => self.parse_impl(end, module),
                "trait" => self.parse_trait(end, module),
                "const" | "static" | "type" => {
                    // `const fn` is a fn item, not a const item.
                    if self.t.get(self.i + 1).map(|t| t.is("fn")).unwrap_or(false) {
                        self.i += 1;
                    } else {
                        self.skip_to_semi(end);
                    }
                }
                "macro_rules" => {
                    // macro_rules! name { ... }
                    while self.i < end && self.text() != "{" {
                        self.i += 1;
                    }
                    if self.i < end {
                        self.i = self.matching_brace(self.i) + 1;
                    }
                }
                _ => self.i += 1,
            }
        }
        self.i = end;
    }

    fn parse_use(&mut self, end: usize) {
        let line = self.t[self.i].line;
        let in_test = self.t[self.i].in_test;
        self.i += 1; // 'use'
        let mut segments = Vec::new();
        while self.i < end && self.text() != ";" {
            if self.t[self.i].kind == TokKind::Ident {
                segments.push(self.t[self.i].text.clone());
            }
            self.i += 1;
        }
        if self.i < end {
            self.i += 1; // ';'
        }
        if !segments.is_empty() {
            self.out.imports.push(Import { segments, line, in_test });
        }
    }

    fn parse_mod(&mut self, end: usize, module: &[String], self_type: Option<&str>) {
        self.i += 1; // 'mod'
        let Some(name) = self.peek().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone())
        else {
            return;
        };
        self.i += 1;
        if self.text() == "{" {
            // Clamp to the enclosing item's end so an unbalanced module
            // body cannot walk the parser past its caller's region.
            let close = self.matching_brace(self.i).min(end);
            self.i += 1;
            let mut inner = module.to_vec();
            inner.push(name);
            self.parse_items(close, &inner, self_type);
            self.i = close + 1;
        } else if self.text() == ";" {
            self.i += 1;
        }
    }

    fn parse_fn(&mut self, end: usize, module: &[String], self_type: Option<&str>) {
        let kw = &self.t[self.i];
        let (line, in_test) = (kw.line, kw.in_test);
        self.i += 1; // 'fn'
        let Some(name) = self.peek().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone())
        else {
            return;
        };
        self.i += 1;
        self.skip_generics();
        // Parameter list.
        let mut params = Vec::new();
        if self.text() == "(" {
            let mut depth = 0i64;
            while self.i < end {
                match self.t[self.i].text.as_str() {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth == 0 {
                            self.i += 1;
                            break;
                        }
                    }
                    ">" if !self.t[self.i - 1].is("-") => depth -= 1,
                    ":" if depth == 1 => {
                        // `name: Type` at top parameter depth; skip `::`.
                        let double = self.t.get(self.i + 1).map(|t| t.is(":")).unwrap_or(false)
                            || self.t[self.i - 1].is(":");
                        if !double {
                            if let Some(prev) =
                                self.t.get(self.i - 1).filter(|t| t.kind == TokKind::Ident)
                            {
                                params.push(prev.text.clone());
                            }
                        }
                    }
                    "self" if depth == 1 => params.push("self".to_string()),
                    _ => {}
                }
                self.i += 1;
            }
        }
        // Return type / where clause: scan to the body `{` or a bodyless `;`.
        let mut depth = 0i64;
        while self.i < end {
            match self.t[self.i].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth <= 0 => {
                    // Trait method without a default body.
                    self.i += 1;
                    self.out.fns.push(FnItem {
                        name,
                        line,
                        in_test,
                        self_type: self_type.map(str::to_string),
                        module: module.to_vec(),
                        params,
                        body: Vec::new(),
                    });
                    return;
                }
                "{" if depth <= 0 => break,
                _ => {}
            }
            self.i += 1;
        }
        let mut body = Vec::new();
        if self.i < end && self.text() == "{" {
            let close = self.matching_brace(self.i);
            body = self.t[self.i + 1..close.min(self.t.len())].to_vec();
            self.i = close + 1;
        }
        self.out.fns.push(FnItem {
            name,
            line,
            in_test,
            self_type: self_type.map(str::to_string),
            module: module.to_vec(),
            params,
            body,
        });
    }

    fn parse_type(&mut self, end: usize) {
        let is_enum = self.text() == "enum";
        let line = self.t[self.i].line;
        self.i += 1;
        let Some(name) = self.peek().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone())
        else {
            return;
        };
        self.i += 1;
        self.skip_generics();
        // Skip a where clause preceding the body.
        while self.i < end && !matches!(self.text(), "{" | "(" | ";") {
            self.i += 1;
        }
        let mut fields = Vec::new();
        let mut variants = Vec::new();
        match self.text() {
            "(" => {
                // Tuple struct: `struct X(A, B);`
                let mut depth = 0i64;
                let mut idx = 0usize;
                let mut current: Vec<String> = Vec::new();
                let mut fline = line;
                while self.i < end {
                    let t = &self.t[self.i];
                    match t.text.as_str() {
                        "(" | "[" | "<" => depth += 1,
                        ")" | "]" => {
                            depth -= 1;
                            if depth == 0 {
                                if !current.is_empty() {
                                    fields.push(Field {
                                        variant: None,
                                        name: idx.to_string(),
                                        type_idents: std::mem::take(&mut current),
                                        line: fline,
                                    });
                                }
                                self.i += 1;
                                break;
                            }
                        }
                        ">" if !self.t[self.i - 1].is("-") => depth -= 1,
                        "," if depth == 1 => {
                            fields.push(Field {
                                variant: None,
                                name: idx.to_string(),
                                type_idents: std::mem::take(&mut current),
                                line: fline,
                            });
                            idx += 1;
                            fline = t.line;
                        }
                        _ => {
                            if t.kind == TokKind::Ident {
                                if current.is_empty() {
                                    fline = t.line;
                                }
                                current.push(t.text.clone());
                            }
                        }
                    }
                    self.i += 1;
                }
                if self.text() == ";" {
                    self.i += 1;
                }
            }
            "{" => {
                let close = self.matching_brace(self.i);
                let body = &self.t[self.i + 1..close.min(self.t.len())];
                if is_enum {
                    parse_enum_body(body, &mut variants, &mut fields);
                } else {
                    parse_struct_fields(body, None, &mut fields);
                }
                self.i = close + 1;
            }
            _ => {
                // Unit struct `struct X;`
                if self.text() == ";" {
                    self.i += 1;
                }
            }
        }
        self.out.types.push(TypeItem { name, line, is_enum, fields, variants });
    }

    fn parse_impl(&mut self, end: usize, module: &[String]) {
        self.i += 1; // 'impl'
        self.skip_generics();
        // Header: everything up to the body `{`; the self type is the last
        // path ident (after `for`, if a trait impl).
        let mut header: Vec<&Token> = Vec::new();
        let mut depth = 0i64;
        while self.i < end {
            match self.t[self.i].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "<" => {
                    self.skip_generics();
                    continue;
                }
                "{" if depth <= 0 => break,
                ";" if depth <= 0 => {
                    self.i += 1;
                    return;
                }
                _ => {}
            }
            header.push(&self.t[self.i]);
            self.i += 1;
        }
        let after_for: Vec<&&Token> = match header.iter().position(|t| t.is_ident("for")) {
            Some(p) => header[p + 1..].iter().collect(),
            None => header.iter().collect(),
        };
        let self_type = after_for
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        if self.text() == "{" {
            let close = self.matching_brace(self.i);
            self.i += 1;
            let st = if self_type.is_empty() { None } else { Some(self_type.as_str()) };
            self.parse_items(close, module, st);
            self.i = close + 1;
        }
    }

    fn parse_trait(&mut self, end: usize, module: &[String]) {
        self.i += 1; // 'trait'
        let name = self
            .peek()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        // Skip supertrait bounds/where clause to the body.
        let mut depth = 0i64;
        while self.i < end {
            match self.text() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "<" => {
                    self.skip_generics();
                    continue;
                }
                "{" if depth <= 0 => break,
                ";" if depth <= 0 => {
                    self.i += 1;
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
        if self.text() == "{" {
            let close = self.matching_brace(self.i);
            self.i += 1;
            let st = if name.is_empty() { None } else { Some(name.as_str()) };
            self.parse_items(close, module, st);
            self.i = close + 1;
        }
    }
}

/// Parses `name: Type, ...` fields from a struct body token slice.
fn parse_struct_fields(body: &[Token], variant: Option<&str>, fields: &mut Vec<Field>) {
    let mut depth = 0i64;
    let mut i = 0;
    while i < body.len() {
        match body[i].text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ">" if i > 0 && !body[i - 1].is("-") => depth -= 1,
            "#" => {
                // Skip field attributes.
                let mut d = 0i64;
                while i < body.len() {
                    match body[i].text.as_str() {
                        "[" => d += 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            ":" if depth == 0 => {
                let double = body.get(i + 1).map(|t| t.is(":")).unwrap_or(false)
                    || (i > 0 && body[i - 1].is(":"));
                if !double {
                    if let Some(name_tok) = body.get(i.wrapping_sub(1)) {
                        if name_tok.kind == TokKind::Ident {
                            // Collect type idents until the field-separating
                            // comma at depth 0.
                            let mut j = i + 1;
                            let mut d = 0i64;
                            let mut type_idents = Vec::new();
                            while j < body.len() {
                                match body[j].text.as_str() {
                                    "(" | "[" | "{" | "<" => d += 1,
                                    ")" | "]" | "}" => d -= 1,
                                    ">" if !body[j - 1].is("-") => d -= 1,
                                    "," if d == 0 => break,
                                    _ => {
                                        if body[j].kind == TokKind::Ident {
                                            type_idents.push(body[j].text.clone());
                                        }
                                    }
                                }
                                j += 1;
                            }
                            fields.push(Field {
                                variant: variant.map(str::to_string),
                                name: name_tok.text.clone(),
                                type_idents,
                                line: name_tok.line,
                            });
                            i = j;
                            continue;
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Parses enum variants (and their payload fields) from a body token slice.
fn parse_enum_body(body: &[Token], variants: &mut Vec<String>, fields: &mut Vec<Field>) {
    let mut i = 0;
    while i < body.len() {
        // Skip variant attributes.
        if body[i].is("#") {
            let mut d = 0i64;
            while i < body.len() {
                match body[i].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            continue;
        }
        if body[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let vname = body[i].text.clone();
        i += 1;
        match body.get(i).map(|t| t.text.as_str()) {
            Some("(") => {
                // Tuple payload: collect type idents until the matching `)`.
                let mut d = 0i64;
                let start_line = body[i].line;
                let mut type_idents = Vec::new();
                while i < body.len() {
                    match body[i].text.as_str() {
                        "(" | "[" | "<" => d += 1,
                        ")" | "]" => {
                            d -= 1;
                            if d == 0 {
                                i += 1;
                                break;
                            }
                        }
                        ">" if !body[i - 1].is("-") => d -= 1,
                        _ => {
                            if body[i].kind == TokKind::Ident {
                                type_idents.push(body[i].text.clone());
                            }
                        }
                    }
                    i += 1;
                }
                fields.push(Field {
                    variant: Some(vname.clone()),
                    name: "0".to_string(),
                    type_idents,
                    line: start_line,
                });
            }
            Some("{") => {
                // Struct payload: named fields, tagged with this variant.
                let mut d = 0i64;
                let start = i + 1;
                let mut close = body.len();
                while i < body.len() {
                    match body[i].text.as_str() {
                        "{" => d += 1,
                        "}" => {
                            d -= 1;
                            if d == 0 {
                                close = i;
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                parse_struct_fields(&body[start..close], Some(&vname), fields);
            }
            _ => {}
        }
        variants.push(vname);
        // Skip a discriminant (`= expr`) and the trailing comma.
        while i < body.len() && !body[i].is(",") {
            i += 1;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;

    fn parse(src: &str) -> FileAst {
        parse_file(&lex(src))
    }

    #[test]
    fn parses_fns_with_params_and_body_refs() {
        let ast = parse(
            "pub fn alpha(x: u32, seed: u64) -> u64 {\n    let y = round_seed(seed, x as u64);\n    y\n}\n",
        );
        assert_eq!(ast.fns.len(), 1);
        let f = &ast.fns[0];
        assert_eq!(f.name, "alpha");
        assert_eq!(f.params, vec!["x", "seed"]);
        assert!(f.references("round_seed"));
        assert_eq!(f.reference_line("round_seed"), Some(2));
        assert!(!f.in_test);
    }

    #[test]
    fn parses_impl_methods_with_self_type() {
        let ast = parse(
            "struct Shuffler { seed: u64 }\nimpl Shuffler {\n    fn permutation(&self, n: usize) -> Vec<usize> { vec![n] }\n}\nimpl std::fmt::Display for Shuffler {\n    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n}\n",
        );
        assert_eq!(ast.types.len(), 1);
        assert_eq!(ast.types[0].fields[0].name, "seed");
        assert_eq!(ast.fns.len(), 2);
        assert_eq!(ast.fns[0].self_type.as_deref(), Some("Shuffler"));
        assert_eq!(ast.fns[1].name, "fmt");
        assert_eq!(ast.fns[1].self_type.as_deref(), Some("Shuffler"));
    }

    #[test]
    fn parses_enum_variants_and_variant_fields() {
        let ast = parse(
            "pub enum Message {\n    RoundStart { round: u64, selected: u32 },\n    GenSlice(MatrixPayload),\n    Empty,\n}\n",
        );
        let ty = &ast.types[0];
        assert!(ty.is_enum);
        assert_eq!(ty.variants, vec!["RoundStart", "GenSlice", "Empty"]);
        assert!(ty
            .fields
            .iter()
            .any(|f| f.variant.as_deref() == Some("RoundStart") && f.name == "round"));
        assert!(ty
            .fields
            .iter()
            .any(|f| f.variant.as_deref() == Some("GenSlice")
                && f.type_idents == vec!["MatrixPayload"]));
    }

    #[test]
    fn parses_use_paths_including_groups() {
        let ast = parse("use gtv_vfl::{negotiate_seed, Network};\nuse gtv_data::Table;\n");
        assert_eq!(ast.imports.len(), 2);
        assert_eq!(ast.imports[0].segments[0], "gtv_vfl");
        assert!(ast.imports[0].segments.iter().any(|s| s == "negotiate_seed"));
        assert_eq!(ast.imports[1].segments, vec!["gtv_data", "Table"]);
    }

    #[test]
    fn tracks_inline_modules_and_cfg_test() {
        let src = "mod inner {\n    pub fn deep() {}\n}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let ast = parse(src);
        assert_eq!(ast.fns.len(), 2);
        assert_eq!(ast.fns[0].module, vec!["inner"]);
        assert!(!ast.fns[0].in_test);
        assert!(ast.fns[1].in_test);
    }

    #[test]
    fn fn_bodies_capture_casts_and_macros_as_tokens() {
        let ast =
            parse("fn encode(v: &[u32]) -> u32 {\n    println!(\"x\");\n    v.len() as u32\n}\n");
        let f = &ast.fns[0];
        assert!(f.references("println"));
        assert!(f.references("as"));
        assert!(f.references("u32"));
    }

    #[test]
    fn const_fn_and_where_clauses_do_not_derail() {
        let ast = parse(
            "pub const fn tag() -> u8 { 3 }\nfn generic<T>(x: T) -> T\nwhere\n    T: Clone,\n{\n    x\n}\n",
        );
        assert_eq!(ast.fns.len(), 2);
        assert_eq!(ast.fns[0].name, "tag");
        assert_eq!(ast.fns[1].name, "generic");
        assert_eq!(ast.fns[1].params, vec!["x"]);
    }

    #[test]
    fn tuple_structs_and_arrays_in_types() {
        let ast = parse("struct Pair(u32, Vec<f32>);\nstruct Buf { data: [u8; 4] }\n");
        assert_eq!(ast.types.len(), 2);
        assert_eq!(ast.types[0].fields.len(), 2);
        assert!(ast.types[0].fields[1].type_idents.contains(&"f32".to_string()));
        assert_eq!(ast.types[1].fields[0].name, "data");
    }
}
