//! `gtv-xtask` — workspace maintenance tasks.
//!
//! ```text
//! cargo run -p gtv-xtask -- lint [--root <path>] [--json] [--max-ms <n>]
//! ```
//!
//! `lint` runs the GTV static-analysis passes (rules L1–L10, see the crate
//! docs) over the workspace and exits non-zero on any finding. `--json`
//! emits one JSON object per finding on stdout — findings first (sorted by
//! file, line, rule, so two runs are byte-identical), then one trailing
//! `{"timings":...}` record so CI artifacts show each pass's cost against
//! the wall-time budget; `--max-ms` additionally fails the run if total
//! analysis wall-time exceeds the budget, keeping the linter fast enough
//! for pre-commit use.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE_EXIT: u8 = 2;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gtv-xtask lint [--root <path>] [--json] [--max-ms <n>]\n\n\
         Runs the GTV protocol-invariant lints:\n  \
         L1 panic         no unwrap/expect/panic!/unreachable!/todo! in protocol paths\n  \
         L2 determinism   no thread_rng/from_entropy/SystemTime::now/Instant::now outside crates/bench\n  \
         L3 float-eq      no ==/!= against float literals in crates/metrics, crates/ml\n  \
         L4 wire          every Message variant has encode and decode arms\n  \
         L5 allow-justification  every #[allow(clippy::...)] carries a trailing // justification\n  \
         L6 privacy-flow  shuffle-seed secrets unreachable from server code and logging sinks\n  \
         L7 rng-provenance  seed_from_u64/from_seed args derive from a seed/round value\n  \
         L8 cast-safety   narrowing casts on wire/transport paths carry a bounds guard\n  \
         L9 layering      crate imports respect the dependency DAG\n  \
         L10 protocol-order  trainer/transport send-recv order follows the protocol machine\n\n\
         --json     one JSON object per finding, then a timings record, on stdout\n  \
         --max-ms   fail if total lint wall-time exceeds <n> milliseconds\n\n\
         Suppress a finding with: // gtv-lint: allow(<rule>) -- <justification>"
    );
    ExitCode::from(USAGE_EXIT)
}

/// Locates the workspace root: `--root` if given, else the directory
/// holding this crate's grandparent `Cargo.toml` (cargo runs xtask from the
/// workspace), else the current directory.
fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map_or_else(|| PathBuf::from("."), PathBuf::from)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { return usage() };
    if command != "lint" {
        eprintln!("unknown command `{command}`");
        return usage();
    }
    let mut root = None;
    let mut json = false;
    let mut max_ms: Option<f64> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--json" => json = true,
            "--max-ms" => match args.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(n) => max_ms = Some(n),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let root = workspace_root(root);
    let (findings, timings) = match gtv_xtask::run_lint_timed(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(USAGE_EXIT);
        }
    };
    let total_ms: f64 = timings.iter().map(|t| t.millis).sum();
    for t in &timings {
        eprintln!("  {:<24} {:>8.2} ms", t.label, t.millis);
    }
    eprintln!("  {:<24} {:>8.2} ms", "total", total_ms);
    if json {
        for finding in &findings {
            println!("{}", finding.to_json());
        }
        // Trailing per-pass timings record: CI publishes this file, making
        // each pass's cost against the 5 s budget visible in the artifact.
        let passes: Vec<String> = timings
            .iter()
            .map(|t| format!("{{\"pass\":\"{}\",\"millis\":{:.2}}}", t.label, t.millis))
            .collect();
        println!("{{\"timings\":[{}],\"total_ms\":{total_ms:.2}}}", passes.join(","));
    } else {
        for finding in &findings {
            println!("{finding}");
        }
    }
    let over_budget = max_ms.map(|cap| total_ms > cap).unwrap_or(false);
    if over_budget {
        eprintln!(
            "gtv-xtask lint: wall-time {total_ms:.2} ms exceeds --max-ms {:.0}",
            max_ms.unwrap_or(0.0)
        );
    }
    if findings.is_empty() && !over_budget {
        if !json {
            println!("gtv-xtask lint: clean ({} ok)", root.display());
        }
        ExitCode::SUCCESS
    } else {
        if !findings.is_empty() {
            eprintln!("gtv-xtask lint: {} finding(s)", findings.len());
        }
        ExitCode::FAILURE
    }
}
