//! `gtv-xtask` — workspace maintenance tasks.
//!
//! ```text
//! cargo run -p gtv-xtask -- lint [--root <path>] [--json | --sarif]
//!     [--baseline <file>] [--update-baseline]
//!     [--max-ms <n>] [--max-pass-ms <n>]
//! ```
//!
//! `lint` runs the GTV static-analysis passes (rules L1–L12, see the crate
//! docs) over the workspace and exits non-zero on any finding. `--json`
//! emits one JSON object per finding on stdout, `--sarif` a SARIF 2.1.0
//! log; findings are sorted by (file, line, rule) and no wall-clock value
//! reaches stdout, so two runs over the same tree are byte-identical — CI
//! diffs consecutive outputs as a determinism check. The per-pass timings
//! record goes to stderr. `--baseline <file>` fails only on findings not
//! in the checked-in baseline; `--update-baseline` regenerates it.
//! `--max-ms` caps total analysis wall-time and `--max-pass-ms` caps each
//! pass, keeping the (now dataflow-carrying) linter fast enough for
//! pre-commit use.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE_EXIT: u8 = 2;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gtv-xtask lint [--root <path>] [--json | --sarif] [--baseline <file>]\n\
         \x20                     [--update-baseline] [--max-ms <n>] [--max-pass-ms <n>]\n\n\
         Runs the GTV protocol-invariant lints:\n  \
         L1 panic         no unwrap/expect/panic!/unreachable!/todo! in protocol paths\n  \
         L2 determinism   no thread_rng/from_entropy/SystemTime::now/Instant::now outside crates/bench;\n  \
         \x20                 lane-level SIMD ([f32; 8], chunks_exact(8)) only in crates/tensor/src/simd.rs\n  \
         L3 float-eq      no ==/!= against float literals in crates/metrics, crates/ml\n  \
         L4 wire          every Message variant has encode and decode arms\n  \
         L5 allow-justification  every #[allow(clippy::...)] carries a trailing // justification\n  \
         L6 privacy-flow  shuffle-seed secrets unreachable from server code and logging sinks\n  \
         L7 rng-provenance  seed_from_u64/from_seed args derive from a seed/round value\n  \
         L8 cast-safety   narrowing casts on wire/transport paths carry a bounds guard\n  \
         L9 layering      crate imports respect the dependency DAG\n  \
         L10 protocol-order  trainer/transport and serve-session send-recv order follows the declared machines\n  \
         L11 raw-egress   raw partition columns never reach Message/wire encode unencoded\n  \
         L12 nondet-flow  env/time/thread-id/unordered-iteration values never reach kernels, seeds, wire\n\n\
         --json             one JSON object per finding on stdout (timings go to stderr)\n  \
         --sarif            SARIF 2.1.0 log on stdout (byte-stable across runs)\n  \
         --baseline <file>  fail only on findings not recorded in <file>\n  \
         --update-baseline  rewrite <file> from this run's findings and exit clean\n  \
         --max-ms <n>       fail if total lint wall-time exceeds <n> milliseconds\n  \
         --max-pass-ms <n>  fail if any single pass exceeds <n> milliseconds\n\n\
         Suppress a finding with: // gtv-lint: allow(<rule>) -- <justification>"
    );
    ExitCode::from(USAGE_EXIT)
}

/// Locates the workspace root: `--root` if given, else the directory
/// holding this crate's grandparent `Cargo.toml` (cargo runs xtask from the
/// workspace), else the current directory.
fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map_or_else(|| PathBuf::from("."), PathBuf::from)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { return usage() };
    if command != "lint" {
        eprintln!("unknown command `{command}`");
        return usage();
    }
    let mut root = None;
    let mut json = false;
    let mut sarif = false;
    let mut baseline: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut max_ms: Option<f64> = None;
    let mut max_pass_ms: Option<f64> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--update-baseline" => update_baseline = true,
            "--max-ms" => match args.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(n) => max_ms = Some(n),
                None => return usage(),
            },
            "--max-pass-ms" => match args.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(n) => max_pass_ms = Some(n),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if json && sarif {
        eprintln!("--json and --sarif are mutually exclusive");
        return usage();
    }
    if update_baseline && baseline.is_none() {
        eprintln!("--update-baseline requires --baseline <file>");
        return usage();
    }
    let root = workspace_root(root);
    let (findings, timings) = match gtv_xtask::run_lint_timed(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(USAGE_EXIT);
        }
    };
    let total_ms: f64 = timings.iter().map(|t| t.millis).sum();
    for t in &timings {
        eprintln!("  {:<24} {:>8.2} ms", t.label, t.millis);
    }
    eprintln!("  {:<24} {:>8.2} ms", "total", total_ms);
    if json {
        // The per-pass timings record stays on stderr: stdout carries only
        // the sorted findings, so two runs are byte-identical.
        let passes: Vec<String> = timings
            .iter()
            .map(|t| format!("{{\"pass\":\"{}\",\"millis\":{:.2}}}", t.label, t.millis))
            .collect();
        eprintln!("{{\"timings\":[{}],\"total_ms\":{total_ms:.2}}}", passes.join(","));
    }

    // Baseline handling: --update-baseline records the current findings as
    // accepted; --baseline alone fails only on findings beyond the file.
    let mut effective: &[gtv_xtask::Finding] = &findings;
    let fresh;
    if let Some(path) = &baseline {
        if update_baseline {
            let rendered = gtv_xtask::report::render_baseline(&findings);
            if let Err(e) = std::fs::write(path, rendered) {
                eprintln!("cannot write baseline {}: {e}", path.display());
                return ExitCode::from(USAGE_EXIT);
            }
            eprintln!(
                "gtv-xtask lint: baseline {} updated ({} finding(s) recorded)",
                path.display(),
                findings.len()
            );
            effective = &[];
        } else {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read baseline {}: {e}", path.display());
                    return ExitCode::from(USAGE_EXIT);
                }
            };
            let outcome = gtv_xtask::report::apply_baseline(&findings, &text);
            if outcome.matched > 0 || outcome.stale > 0 {
                eprintln!(
                    "gtv-xtask lint: baseline matched {} finding(s), {} stale entr(y/ies)",
                    outcome.matched, outcome.stale
                );
            }
            fresh = outcome.fresh;
            effective = &fresh;
        }
    }

    if sarif {
        print!("{}", gtv_xtask::report::to_sarif(effective));
    } else if json {
        for finding in effective {
            println!("{}", finding.to_json());
        }
    } else {
        for finding in effective {
            println!("{finding}");
        }
    }
    let mut over_budget = max_ms.map(|cap| total_ms > cap).unwrap_or(false);
    if over_budget {
        eprintln!(
            "gtv-xtask lint: wall-time {total_ms:.2} ms exceeds --max-ms {:.0}",
            max_ms.unwrap_or(0.0)
        );
    }
    if let Some(cap) = max_pass_ms {
        for t in timings.iter().filter(|t| t.millis > cap) {
            eprintln!(
                "gtv-xtask lint: pass {} took {:.2} ms, exceeding --max-pass-ms {cap:.0}",
                t.label, t.millis
            );
            over_budget = true;
        }
    }
    if effective.is_empty() && !over_budget {
        if !json && !sarif {
            println!("gtv-xtask lint: clean ({} ok)", root.display());
        }
        ExitCode::SUCCESS
    } else {
        if !effective.is_empty() {
            eprintln!("gtv-xtask lint: {} finding(s)", effective.len());
        }
        ExitCode::FAILURE
    }
}
