//! `gtv-xtask` — workspace maintenance tasks.
//!
//! ```text
//! cargo run -p gtv-xtask -- lint [--root <path>]
//! ```
//!
//! `lint` runs the GTV static-analysis pass (rules L1–L5, see the crate
//! docs) over the workspace and exits non-zero on any finding.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE_EXIT: u8 = 2;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gtv-xtask lint [--root <path>]\n\n\
         Runs the GTV protocol-invariant lints:\n  \
         L1 panic         no unwrap/expect/panic!/unreachable!/todo! in protocol paths\n  \
         L2 determinism   no thread_rng/from_entropy/SystemTime::now/Instant::now outside crates/bench\n  \
         L3 float-eq      no ==/!= against float literals in crates/metrics, crates/ml\n  \
         L4 wire          every Message variant has encode and decode arms\n  \
         L5 allow-justification  every #[allow(clippy::...)] carries a trailing // justification\n\n\
         Suppress a finding with: // gtv-lint: allow(<rule>) -- <justification>"
    );
    ExitCode::from(USAGE_EXIT)
}

/// Locates the workspace root: `--root` if given, else the directory
/// holding this crate's grandparent `Cargo.toml` (cargo runs xtask from the
/// workspace), else the current directory.
fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map_or_else(|| PathBuf::from("."), PathBuf::from)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { return usage() };
    if command != "lint" {
        eprintln!("unknown command `{command}`");
        return usage();
    }
    let mut root = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let root = workspace_root(root);
    match gtv_xtask::run_lint(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("gtv-xtask lint: clean ({} ok)", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            eprintln!("gtv-xtask lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(USAGE_EXIT)
        }
    }
}
