//! Finding reports beyond plain text: SARIF 2.1.0 export and the
//! checked-in baseline (suppression) file.
//!
//! Both renderings are deliberately byte-stable: findings arrive already
//! sorted by (file, line, rule, message), nothing here injects wall-clock
//! values, and the JSON is hand-assembled in a fixed key order — two
//! consecutive `lint --sarif` or `lint --json --baseline` runs over the
//! same tree produce identical bytes, which is what lets CI diff
//! consecutive outputs as a determinism check.
//!
//! The baseline file is one [`Finding::to_json`] line per accepted
//! finding, with `#` comment lines for the header. Matching is
//! line-number-insensitive (the `"line":N,` field is stripped from the
//! comparison key) so pure drift — code above a known finding growing or
//! shrinking — does not invalidate the baseline, while multiset counting
//! still flags a *second* identical finding in the same file as fresh.

use crate::{Finding, Rule};

/// How a lint run relates to a baseline file.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Findings not covered by the baseline — these fail the run.
    pub fresh: Vec<Finding>,
    /// Count of findings matched (suppressed) by baseline entries.
    pub matched: usize,
    /// Baseline entries no longer produced by the analyzer; prune with
    /// `--update-baseline`.
    pub stale: usize,
}

/// The comparison key of one baseline/finding line: the JSON rendering
/// with the volatile `"line":N,` field removed.
fn baseline_key(json_line: &str) -> String {
    let Some(start) = json_line.find("\"line\":") else {
        return json_line.to_string();
    };
    let rest = &json_line[start + 7..];
    let digits = rest.chars().take_while(|c| c.is_ascii_digit()).count();
    let after = &rest[digits..];
    let after = after.strip_prefix(',').unwrap_or(after);
    format!("{}{}", &json_line[..start], after)
}

/// Renders the baseline file for `findings` (header + one JSON line each).
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("# gtv-xtask lint baseline: accepted findings, one JSON line each.\n");
    out.push_str("# Matching ignores the \"line\" field; regenerate with\n");
    out.push_str("#   cargo run -p gtv-xtask -- lint --baseline <this file> --update-baseline\n");
    for f in findings {
        out.push_str(&f.to_json());
        out.push('\n');
    }
    out
}

/// Splits `findings` into fresh vs. baseline-matched under the baseline
/// file `text`. Matching is multiset: each baseline entry suppresses at
/// most one finding, so a duplicated regression still surfaces.
pub fn apply_baseline(findings: &[Finding], text: &str) -> BaselineOutcome {
    let mut counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        *counts.entry(baseline_key(line)).or_insert(0) += 1;
    }
    let mut outcome = BaselineOutcome::default();
    for f in findings {
        let key = baseline_key(&f.to_json());
        match counts.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                outcome.matched += 1;
            }
            _ => outcome.fresh.push(f.clone()),
        }
    }
    outcome.stale = counts.values().sum();
    outcome
}

/// Renders `findings` as a SARIF 2.1.0 log (one run, one result per
/// finding, rule metadata for all 12 rules in L-number order).
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
    out.push_str("\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"gtv-xtask\",\"rules\":[");
    for (i, rule) in Rule::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"name\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            rule.id(),
            rule.label(),
            crate::json_escape(rule.description()),
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rule_index =
            Rule::ALL.iter().position(|r| *r == f.rule).expect("Rule::ALL covers every rule");
        out.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"ruleIndex\":{rule_index},\"level\":\"error\",\
             \"message\":{{\"text\":\"{}\"}},\"locations\":[{{\"physicalLocation\":\
             {{\"artifactLocation\":{{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}}}}]}}",
            f.rule.id(),
            crate::json_escape(&f.message),
            crate::json_escape(&f.file.display().to_string().replace('\\', "/")),
            f.line,
        ));
    }
    out.push_str("]}]}");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn finding(path: &str, line: usize, rule: Rule, message: &str) -> Finding {
        Finding { file: PathBuf::from(path), line, rule, message: message.to_string() }
    }

    #[test]
    fn baseline_matching_ignores_line_numbers() {
        let old = finding("crates/a/src/x.rs", 10, Rule::Panic, "`unwrap` in protocol path");
        let moved = finding("crates/a/src/x.rs", 42, Rule::Panic, "`unwrap` in protocol path");
        let text = render_baseline(std::slice::from_ref(&old));
        let outcome = apply_baseline(std::slice::from_ref(&moved), &text);
        assert!(outcome.fresh.is_empty(), "{:?}", outcome.fresh);
        assert_eq!(outcome.matched, 1);
        assert_eq!(outcome.stale, 0);
    }

    #[test]
    fn baseline_is_multiset_and_tracks_stale() {
        let f = finding("crates/a/src/x.rs", 3, Rule::Panic, "m");
        let text = render_baseline(std::slice::from_ref(&f));
        // Two identical findings against one baseline entry: one fresh.
        let outcome = apply_baseline(&[f.clone(), f.clone()], &text);
        assert_eq!(outcome.matched, 1);
        assert_eq!(outcome.fresh.len(), 1);
        // No findings at all: the entry is stale.
        let outcome = apply_baseline(&[], &text);
        assert_eq!(outcome.stale, 1);
    }

    #[test]
    fn baseline_round_trip_is_byte_stable() {
        let fs = vec![
            finding("crates/a/src/x.rs", 1, Rule::RawEgress, "raw \"column\" egress"),
            finding("crates/b/src/y.rs", 9, Rule::NondetFlow, "nondet"),
        ];
        let text = render_baseline(&fs);
        assert_eq!(text, render_baseline(&fs), "rendering must be deterministic");
        let outcome = apply_baseline(&fs, &text);
        assert!(outcome.fresh.is_empty());
        assert_eq!(outcome.matched, 2);
        assert_eq!(outcome.stale, 0);
    }

    #[test]
    fn sarif_lists_all_rules_and_escapes_messages() {
        let fs = vec![finding("crates/a/src/x.rs", 5, Rule::NondetFlow, "a \"quoted\" msg")];
        let sarif = to_sarif(&fs);
        for rule in Rule::ALL {
            assert!(sarif.contains(&format!("\"id\":\"{}\"", rule.id())), "{}", rule.id());
        }
        assert!(sarif.contains("\"ruleIndex\":11"));
        assert!(sarif.contains("a \\\"quoted\\\" msg"));
        assert!(sarif.contains("\"startLine\":5"));
        assert!(sarif.ends_with("\n"));
        assert_eq!(sarif, to_sarif(&fs), "SARIF must be byte-stable");
    }
}
