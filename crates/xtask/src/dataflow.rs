//! Flow-sensitive intraprocedural taint engine with memoized
//! interprocedural summaries (DESIGN.md §12).
//!
//! The engine walks each function body's token stream as a linear sequence
//! of statements, maintaining a taint environment over local names:
//! `let` bindings and plain assignments are *strong* updates (they kill
//! the old taint — this is what makes the analysis flow-sensitive),
//! field stores and mutating method-call statements are *weak* updates on
//! the receiver's root, and `for` patterns bind from their iterated
//! expression. Expressions are evaluated left-to-right over the same
//! tokens; calls into the workspace resolve through [`RefGraph`] and apply
//! a memoized per-callee summary (return taint and parameter→sink flows,
//! inlining depth ≤ 8, mirroring the L10 machinery), so a raw column
//! laundered through `let hidden = pick(table);` is still seen at the
//! wire sink.
//!
//! Taint kinds and the lints they power:
//!
//! * `RAW` — raw feature-column data (L11 `raw-egress`): rooted at
//!   `Table`/partition column accessors, killed only by the sanctioned
//!   encoder path (`TableTransformer::encode` / `*transformer*.encode`),
//!   must never reach `Message` construction or a wire `encode` sink.
//! * `NONDET` — ambient nondeterminism (L12 `nondet-flow`): rooted at
//!   `std::env` reads (except `GTV_THREADS` inside the sanctioned thread
//!   resolution), wall clocks, thread ids and unordered `HashMap`/
//!   `HashSet` iteration; killed by `sort*`; must never reach tensor
//!   kernels, RNG seed ctors, or wire payloads.
//! * `SECRET` — shuffle-seed material (L6 sink half): rooted at the
//!   [`passes`] secret registries; must never reach a logging macro.
//! * `SEED` — positive seed/round provenance (L7): rooted at any name
//!   containing `seed`/`round` and propagated through flows, so
//!   `let s = cfg.seed; seed_from_u64(s)` now passes where the old
//!   name-co-occurrence rule required the name at the call site.
//!
//! Soundness caveats are documented in DESIGN.md §12: the call graph is
//! an under-approximation (ambiguous names add no edge), struct fields
//! are not tracked across functions, and match-arm bindings only inherit
//! taint through their scrutinee's `let`.

use crate::model::RefGraph;
use crate::parse::{TokKind, Token};
use crate::passes::{SECRET_ROOT_FNS, SECRET_ROOT_VARIANTS, SINK_MACROS};
use crate::{suppressed, FileUnit, Finding, Rule};
use std::collections::{HashMap, HashSet};

/// Maximum summary inlining depth, matching `protocol::MAX_DEPTH`.
const MAX_DEPTH: usize = 8;

/// Raw-data roots: column accessors on partition tables (L11).
pub const RAW_ROOT_METHODS: &[&str] =
    &["column", "column_by_name", "as_float", "as_cat", "target_labels"];

/// The sanctioned encoder self-type: its `encode` output is an
/// activation-space tensor, not raw data (paper §3.1.4).
pub const SANCTIONED_ENCODER_TYPES: &[&str] = &["TableTransformer"];

/// Receiver-name substrings accepted as the sanctioned encoder when the
/// call is method-style (`transformer.encode(..)`).
const SANCTIONED_ENCODER_RECV: &[&str] = &["transformer", "encoder"];

/// Functions allowed to read `GTV_THREADS` / probe host parallelism: the
/// deterministic pool's thread-count resolution (thread count never
/// changes results — DESIGN.md §8).
pub const SANCTIONED_ENV_FNS: &[&str] = &["resolve_threads", "default_threads"];

/// The one environment variable the sanctioned fns may read.
const SANCTIONED_ENV_VAR: &str = "GTV_THREADS";

/// Types whose iteration order is nondeterministic.
const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Iteration methods that expose unordered-container order.
const UNORDERED_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_keys",
    "into_values",
];

/// Methods that impose a total order, killing `NONDET` on their receiver.
const ORDER_SANITIZERS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// RNG seeding constructors (the L7/L12 seed sink).
const SEED_CTORS: &[&str] = &["seed_from_u64", "from_seed"];

/// The field of each secret wire/plan variant that actually holds seed
/// material (mirrors the `lint_registry_drift` contract): pattern-matching
/// `RandomEven { n_clients, seed }` taints only the `seed` binding.
const SECRET_VARIANT_FIELDS: &[(&str, &str)] =
    &[("ShuffleSeedShare", "share"), ("RandomEven", "seed")];

/// Files whose functions form the tensor-kernel hot loop (the L12 kernel
/// sink): a nondeterministic operand would make training runs diverge.
const KERNEL_FILES: &[&str] = &["crates/tensor/src/kernels.rs"];

/// Wire-serialization methods (the L11/L12 wire sink when not the
/// sanctioned encoder).
const WIRE_ENCODE_METHODS: &[&str] = &["encode", "encode_with"];

/// Statement keywords that must never be treated as assignment targets or
/// tainted reads.
const STMT_KEYWORDS: &[&str] =
    &["let", "if", "else", "match", "while", "loop", "for", "return", "break", "continue", "in"];

// ---------------------------------------------------------------------------
// Taint lattice
// ---------------------------------------------------------------------------

/// A taint value: a union of kind bits (low byte) and parameter-origin
/// bits (`PARAM(i)`, used while computing summaries). The lattice is the
/// powerset of bits ordered by inclusion; `union` is join, strong updates
/// are the only kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Taint(u32);

impl Taint {
    pub(crate) const NONE: Taint = Taint(0);
    /// Raw feature-column data (L11).
    pub(crate) const RAW: Taint = Taint(1);
    /// Ambient nondeterminism (L12).
    pub(crate) const NONDET: Taint = Taint(1 << 1);
    /// Shuffle-seed secret material (L6).
    pub(crate) const SECRET: Taint = Taint(1 << 2);
    /// Positive seed/round provenance (L7).
    pub(crate) const SEED: Taint = Taint(1 << 3);

    const KIND_MASK: u32 = 0xff;
    const PARAM_BASE: u32 = 8;
    const PARAM_SLOTS: usize = 24;

    /// The taint marking "flowed from parameter `i`" (used for summaries;
    /// parameters beyond the last slot share it, erring toward unions).
    fn param(i: usize) -> Taint {
        Taint(1 << (Self::PARAM_BASE as usize + i.min(Self::PARAM_SLOTS - 1)))
    }

    pub(crate) fn union(self, other: Taint) -> Taint {
        Taint(self.0 | other.0)
    }

    /// Whether every bit of `other` (non-empty) is present.
    pub(crate) fn contains(self, other: Taint) -> bool {
        other.0 != 0 && self.0 & other.0 == other.0
    }

    fn without(self, other: Taint) -> Taint {
        Taint(self.0 & !other.0)
    }

    /// Parameter indices whose bits are set.
    fn params(self) -> impl Iterator<Item = usize> {
        (0..Self::PARAM_SLOTS).filter(move |i| self.0 & (1 << (Self::PARAM_BASE as usize + i)) != 0)
    }

    fn has_params(self) -> bool {
        self.0 & !Self::KIND_MASK != 0
    }
}

// ---------------------------------------------------------------------------
// Sinks and per-function analysis results
// ---------------------------------------------------------------------------

/// The sink classes the engine observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Sink {
    /// `Message::Variant` construction or a `.encode`/`.encode_with` call.
    Wire,
    /// An RNG seeding constructor argument.
    Seed,
    /// A call into the tensor kernel hot loop.
    Kernel,
    /// A logging/IO macro.
    Log,
}

/// One sink observation: what kind of sink, where, and with what taint.
#[derive(Debug, Clone)]
pub(crate) struct Hit {
    pub(crate) kind: Sink,
    /// 1-based line of the sink (the call line for summarized flows).
    pub(crate) line: usize,
    pub(crate) taint: Taint,
    /// Sink description (`Message::CondUpload`, `.encode_with`, macro or
    /// callee name, or the rendered seed-ctor call for L7 messages).
    pub(crate) detail: String,
    /// The summarized callee the flow passed through, if interprocedural.
    pub(crate) via: Option<String>,
}

/// The memoized per-function summary: return-value taint (with `PARAM(i)`
/// bits for parameter→return flows) and every sink observation, including
/// parameter-mediated ones that callers translate at their call sites.
#[derive(Debug, Clone, Default)]
pub(crate) struct Analysis {
    /// Taint of the function's returned value(s).
    pub(crate) ret: Taint,
    /// Sink observations, in body order.
    pub(crate) hits: Vec<Hit>,
    /// First root description per taint-kind bit, for finding messages.
    notes: Vec<(u32, String)>,
}

impl Analysis {
    /// The recorded root description for a taint kind, if any.
    pub(crate) fn note(&self, kind: Taint) -> Option<&str> {
        self.notes.iter().find(|(b, _)| *b & kind.0 != 0).map(|(_, d)| d.as_str())
    }
}

/// The workspace-wide taint engine: the call graph plus one [`Analysis`]
/// per function, aligned with `graph.fns` indices.
pub(crate) struct TaintEngine<'a> {
    pub(crate) graph: RefGraph<'a>,
    pub(crate) analyses: Vec<Analysis>,
}

impl<'a> TaintEngine<'a> {
    /// Analyzes every workspace function, memoizing summaries bottom-up
    /// through resolved calls (cycle-guarded, depth ≤ [`MAX_DEPTH`]).
    pub(crate) fn build(units: &'a [FileUnit]) -> Self {
        let graph = RefGraph::build(units);
        let mut analyzer =
            Analyzer { graph: &graph, memo: vec![None; graph.fns.len()], stack: Vec::new() };
        for idx in 0..graph.fns.len() {
            analyzer.ensure(idx);
        }
        let analyses = analyzer.memo.into_iter().map(Option::unwrap_or_default).collect();
        Self { graph, analyses }
    }
}

// ---------------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------------

/// Per-function mutable state while walking a body.
#[derive(Default)]
struct FnState {
    /// Current taint of each local name (strong updates overwrite).
    env: HashMap<String, Taint>,
    /// Locals bound to unordered containers (`HashMap`/`HashSet`).
    unordered: HashSet<String>,
    hits: Vec<Hit>,
    notes: Vec<(u32, String)>,
}

impl FnState {
    fn note(&mut self, kind: Taint, desc: impl FnOnce() -> String) {
        if !self.notes.iter().any(|(b, _)| *b == kind.0) {
            self.notes.push((kind.0, desc()));
        }
    }

    fn read(&self, name: &str) -> Taint {
        let mut t = self.env.get(name).copied().unwrap_or(Taint::NONE);
        let lower = name.to_lowercase();
        if lower.contains("seed") || lower.contains("round") {
            t = t.union(Taint::SEED);
        }
        t
    }
}

struct Analyzer<'g, 'a> {
    graph: &'g RefGraph<'a>,
    memo: Vec<Option<Analysis>>,
    /// In-progress function indices (recursion/cycle guard; its length is
    /// the current inlining depth).
    stack: Vec<usize>,
}

impl<'g, 'a> Analyzer<'g, 'a> {
    fn ensure(&mut self, idx: usize) {
        if self.memo[idx].is_some() || self.stack.contains(&idx) {
            return;
        }
        self.stack.push(idx);
        let analysis = self.analyze(idx);
        self.stack.pop();
        self.memo[idx] = Some(analysis);
    }

    /// The callee's summary parts (return taint, parameter-mediated sink
    /// hits), or `None` when recursion or the depth cap forbids it.
    fn summary(&mut self, callee: usize) -> Option<(Taint, Vec<Hit>)> {
        if self.memo[callee].is_none() {
            if self.stack.contains(&callee) || self.stack.len() >= MAX_DEPTH {
                return None;
            }
            self.ensure(callee);
        }
        self.memo[callee].as_ref().map(|a| {
            let param_hits =
                a.hits.iter().filter(|h| h.taint.has_params()).cloned().collect::<Vec<_>>();
            (a.ret, param_hits)
        })
    }

    /// Flow-sensitively analyzes one function body.
    fn analyze(&mut self, idx: usize) -> Analysis {
        let graph = self.graph;
        let f = graph.fns[idx].1;
        let body: &[Token] = &f.body;
        let mut st = FnState::default();
        for (i, p) in f.params.iter().enumerate() {
            st.env.insert(p.clone(), Taint::param(i));
        }
        let mut ret = Taint::NONE;
        let len = body.len();
        let mut i = 0;
        while i < len {
            // Delimit one statement: up to a top-level `;`, a block-opening
            // `{` (control flow), or a closing `}`. A `{` preceded by a
            // CamelCase identifier is a struct literal and stays inside the
            // statement; braces nested in parens (closures) do too.
            let start = i;
            let mut d = 0i64;
            let mut j = i;
            let mut terminator = "";
            while j < len {
                match body[j].text.as_str() {
                    "(" | "[" => d += 1,
                    ")" | "]" => d -= 1,
                    ";" if d == 0 => {
                        terminator = ";";
                        break;
                    }
                    ";" => {}
                    "{" => {
                        let literal = j > start
                            && body[j - 1].kind == TokKind::Ident
                            && camel_case(&body[j - 1].text);
                        if d > 0 || literal {
                            d += 1;
                        } else {
                            terminator = "{";
                            break;
                        }
                    }
                    "}" => {
                        if d > 0 {
                            d -= 1;
                        } else {
                            terminator = "}";
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if j > start {
                let taint = self.statement(&mut st, idx, start, j);
                let first = &body[start];
                let is_tail = (terminator.is_empty() || terminator == "}")
                    && body[j..].iter().all(|t| matches!(t.text.as_str(), "}" | ";" | ","))
                    && !first.is_ident("let");
                if first.is_ident("return") || is_tail {
                    ret = ret.union(taint);
                }
            }
            i = j + 1;
        }
        Analysis { ret, hits: st.hits, notes: st.notes }
    }

    /// Processes one statement: records sinks, applies binding/assignment
    /// updates, and returns the statement's expression taint.
    fn statement(&mut self, st: &mut FnState, idx: usize, lo: usize, hi: usize) -> Taint {
        let graph = self.graph;
        let body: &[Token] = &graph.fns[idx].1.body;
        // Whole-statement evaluation records sinks; binding updates below
        // re-evaluate only the right-hand side (unrecorded) for the taint.
        let whole = self.eval(st, idx, lo, hi, true);
        let first = &body[lo];
        if first.is_ident("let") {
            if let Some((eq, _)) = find_assign_eq(body, lo + 1, hi) {
                let pat_end = top_level_colon(body, lo + 1, eq).unwrap_or(eq);
                let taint = self.eval(st, idx, eq + 1, hi, false);
                let unordered = (lo..hi).any(|k| {
                    body[k].kind == TokKind::Ident
                        && UNORDERED_TYPES.contains(&body[k].text.as_str())
                });
                for t in &body[lo + 1..pat_end] {
                    if t.kind == TokKind::Ident && binding_name(&t.text) {
                        st.env.insert(t.text.clone(), taint);
                        if unordered {
                            st.unordered.insert(t.text.clone());
                        } else {
                            st.unordered.remove(&t.text);
                        }
                    }
                }
            }
            return whole;
        }
        if first.is_ident("for") {
            if let Some(in_i) = (lo + 1..hi).find(|&k| body[k].is_ident("in")) {
                let taint = self.eval(st, idx, in_i + 1, hi, false);
                for t in &body[lo + 1..in_i] {
                    if t.kind == TokKind::Ident && binding_name(&t.text) {
                        st.env.insert(t.text.clone(), taint);
                    }
                }
            }
            return whole;
        }
        if first.kind != TokKind::Ident || STMT_KEYWORDS.contains(&first.text.as_str()) {
            return whole;
        }
        // Assignment statements: `x = e` is a strong update (the kill that
        // makes the analysis flow-sensitive); `x.f = e`, `x[i] = e` and
        // compound ops are weak updates on the chain root.
        if let Some((eq, compound)) = find_assign_eq(body, lo, hi) {
            let taint = self.eval(st, idx, eq + 1, hi, false);
            let simple = eq == lo + 1 && !compound;
            let root = first.text.clone();
            if simple {
                st.env.insert(root.clone(), taint);
                let unordered = (eq + 1..hi).any(|k| {
                    body[k].kind == TokKind::Ident
                        && UNORDERED_TYPES.contains(&body[k].text.as_str())
                });
                if unordered {
                    st.unordered.insert(root);
                } else {
                    st.unordered.remove(&root);
                }
            } else {
                let cur = st.env.get(&root).copied().unwrap_or(Taint::NONE);
                st.env.insert(root, cur.union(taint));
            }
            return whole;
        }
        // Method-call statements mutate their receiver: `v.push(x)` makes
        // `v` at least as tainted as `x`; `v.sort*()` imposes an order,
        // killing NONDET (the pattern every real unordered read uses:
        // collect keys, sort, then use).
        if hi > lo + 1 && body[lo + 1].is(".") {
            let root = first.text.clone();
            let sorts = (lo + 1..hi).any(|k| {
                body[k].kind == TokKind::Ident
                    && ORDER_SANITIZERS.contains(&body[k].text.as_str())
                    && body.get(k + 1).map(|n| n.is("(")).unwrap_or(false)
            });
            let cur = st.env.get(&root).copied().unwrap_or(Taint::NONE);
            let updated = if sorts { cur.without(Taint::NONDET) } else { cur.union(whole) };
            st.env.insert(root, updated);
        }
        whole
    }

    /// Evaluates the expression tokens in `lo..hi` left-to-right, returning
    /// the union taint. With `record`, sink observations are pushed.
    fn eval(&mut self, st: &mut FnState, idx: usize, lo: usize, hi: usize, record: bool) -> Taint {
        let graph = self.graph;
        let body: &[Token] = &graph.fns[idx].1.body;
        let hi = hi.min(body.len());
        let mut taint = Taint::NONE;
        let mut i = lo;
        while i < hi {
            let tok = &body[i];
            if tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let next = if i + 1 < hi { Some(body[i + 1].text.as_str()) } else { None };
            match next {
                // Macro invocation: evaluate args plus format-string
                // `{ident}` interpolations; logging macros are L6 sinks.
                Some("!") if i + 2 < hi && matches!(body[i + 2].text.as_str(), "(" | "[" | "{") => {
                    let close = balanced(body, i + 2, hi);
                    let mut at = self.eval(st, idx, i + 3, close, record);
                    at = at.union(self.interpolation_taint(st, idx, i + 2, close));
                    if record && SINK_MACROS.contains(&tok.text.as_str()) {
                        st.hits.push(Hit {
                            kind: Sink::Log,
                            line: tok.line,
                            taint: at,
                            detail: tok.text.clone(),
                            via: None,
                        });
                    }
                    taint = taint.union(at);
                    i = close + 1;
                }
                Some("(") => {
                    let (at, close) = self.call(st, idx, i, hi, record);
                    taint = taint.union(at);
                    i = close + 1;
                }
                // Struct literal / struct pattern `Name { .. }`.
                Some("{") if camel_case(&tok.text) => {
                    let close = balanced(body, i + 1, hi);
                    let pattern = body.get(close + 1).map(|t| t.is("=")).unwrap_or(false);
                    if pattern {
                        // Match-arm or `if let` pattern: only the registered
                        // secret *field* binding exposes seed material —
                        // `RandomEven { n_clients, seed }` taints `seed`, not
                        // `n_clients`.
                        if SECRET_ROOT_VARIANTS.contains(&tok.text.as_str()) {
                            st.note(Taint::SECRET, || tok.text.clone());
                            bind_secret_fields(st, body, &tok.text, i + 2, close);
                        }
                    } else {
                        let mut at = self.eval(st, idx, i + 2, close, record);
                        let qual = qualifier(body, i);
                        if SECRET_ROOT_VARIANTS.contains(&tok.text.as_str()) {
                            st.note(Taint::SECRET, || tok.text.clone());
                            at = at.union(Taint::SECRET);
                        } else {
                            // Containment is not content: constructing a
                            // struct that *holds* secret state (e.g. the
                            // trainer with its shuffler field) does not make
                            // every later projection of it seed material —
                            // the L6 carrier half polices containment.
                            at = at.without(Taint::SECRET);
                        }
                        if qual == Some("Message") && record {
                            st.hits.push(Hit {
                                kind: Sink::Wire,
                                line: tok.line,
                                taint: at,
                                detail: format!("Message::{}", tok.text),
                                via: None,
                            });
                        }
                        taint = taint.union(at);
                    }
                    i = close + 1;
                }
                _ => {
                    taint = taint.union(st.read(&tok.text));
                    i += 1;
                }
            }
        }
        taint
    }

    /// Classifies and evaluates one call whose callee identifier sits at
    /// `name_idx`; returns the call's value taint and the `)` index.
    fn call(
        &mut self,
        st: &mut FnState,
        idx: usize,
        name_idx: usize,
        hi: usize,
        record: bool,
    ) -> (Taint, usize) {
        let graph = self.graph;
        let (unit, f) = graph.fns[idx];
        let body: &[Token] = &f.body;
        let tok = &body[name_idx];
        let name = tok.text.as_str();
        let line = tok.line;
        let close = balanced(body, name_idx + 1, hi);
        let args = split_args(body, name_idx + 2, close);
        let qual = qualifier(body, name_idx);
        let method = name_idx > 0 && body[name_idx - 1].is(".");
        let recv_taint = if method {
            receiver_root(body, name_idx - 1).map(|r| st.read(&r)).unwrap_or(Taint::NONE)
        } else {
            Taint::NONE
        };
        let eval_args = |a: &mut Self, st: &mut FnState| -> Vec<Taint> {
            args.iter().map(|&(alo, ahi)| a.eval(st, idx, alo, ahi, record)).collect()
        };

        // Tuple-variant `Message::V(..)`: a wire sink when constructed, a
        // pattern when followed by `=>` / `= scrutinee`.
        if qual == Some("Message") && camel_case(name) {
            let pattern = body.get(close + 1).map(|t| t.is("=")).unwrap_or(false);
            if pattern {
                if SECRET_ROOT_VARIANTS.contains(&name) {
                    st.note(Taint::SECRET, || name.to_string());
                    for &(alo, ahi) in &args {
                        for t in &body[alo..ahi] {
                            if t.kind == TokKind::Ident && binding_name(&t.text) {
                                let cur = st.read(&t.text);
                                st.env.insert(t.text.clone(), cur.union(Taint::SECRET));
                            }
                        }
                    }
                }
                return (Taint::NONE, close);
            }
            let at = eval_args(self, st).into_iter().fold(Taint::NONE, Taint::union);
            if record {
                st.hits.push(Hit {
                    kind: Sink::Wire,
                    line,
                    taint: at,
                    detail: format!("Message::{name}"),
                    via: None,
                });
            }
            return (at, close);
        }

        // RNG seed constructors: the L7/L12 seed sink, and the SECRET
        // declassification boundary — the seed is *consumed* here, and the
        // PRNG stream it produces (permutations, samples) is exactly what
        // the protocol legitimately shares, so SECRET does not survive the
        // ctor. NONDET does: a nondeterministic seed yields a
        // nondeterministic stream (the L12 env-seed flow).
        if SEED_CTORS.contains(&name) {
            let at = eval_args(self, st).into_iter().fold(Taint::NONE, Taint::union);
            if record {
                st.hits.push(Hit {
                    kind: Sink::Seed,
                    line,
                    taint: at,
                    detail: format!("{name}({})", arg_preview(body, name_idx + 1, close)),
                    via: None,
                });
            }
            let stream = Taint::SEED.union(Taint(at.0 & Taint::NONDET.0));
            return (stream, close);
        }

        // std::env reads: nondeterministic unless the sanctioned
        // GTV_THREADS resolution.
        if matches!(name, "var" | "var_os" | "vars") && qual == Some("env") {
            if self.sanctioned_env_read(unit, f.name.as_str(), line) {
                return (Taint::NONE, close);
            }
            st.note(Taint::NONDET, || format!("`std::env::{name}` at line {line}"));
            return (Taint::NONDET, close);
        }
        if name == "available_parallelism" {
            if SANCTIONED_ENV_FNS.contains(&f.name.as_str()) {
                return (Taint::NONE, close);
            }
            st.note(Taint::NONDET, || format!("`available_parallelism` at line {line}"));
            return (Taint::NONDET, close);
        }

        // Wall clocks and thread ids.
        if name == "now" && matches!(qual, Some("SystemTime") | Some("Instant")) {
            st.note(Taint::NONDET, || format!("`{}::now` at line {line}", qual.unwrap_or("")));
            return (Taint::NONDET, close);
        }
        if name == "current" && qual == Some("thread") {
            st.note(Taint::NONDET, || format!("`thread::current` at line {line}"));
            return (Taint::NONDET, close);
        }

        // Secret roots: the shuffle-seed negotiation surface.
        if SECRET_ROOT_FNS.contains(&name) || qual == Some("SharedShuffler") {
            let root = if SECRET_ROOT_FNS.contains(&name) { name } else { "SharedShuffler" };
            st.note(Taint::SECRET, || root.to_string());
            let at = eval_args(self, st).into_iter().fold(Taint::NONE, Taint::union);
            return (at.union(Taint::SECRET), close);
        }

        // Sanctioned encoder: output is activation-space, not raw data.
        if name == "encode" {
            let sanctioned_type =
                qual.map(|q| SANCTIONED_ENCODER_TYPES.contains(&q)).unwrap_or(false);
            let sanctioned_recv = method
                && receiver_root(body, name_idx - 1)
                    .map(|r| {
                        let l = r.to_lowercase();
                        SANCTIONED_ENCODER_RECV.iter().any(|s| l.contains(s))
                    })
                    .unwrap_or(false);
            if sanctioned_type || sanctioned_recv {
                eval_args(self, st);
                return (Taint::NONE, close);
            }
        }

        // Wire serialization: tainted payloads must not be encoded.
        if WIRE_ENCODE_METHODS.contains(&name) && method {
            let at = eval_args(self, st).into_iter().fold(recv_taint, Taint::union);
            if record {
                st.hits.push(Hit {
                    kind: Sink::Wire,
                    line,
                    taint: at,
                    detail: format!(".{name}"),
                    via: None,
                });
            }
            return (at, close);
        }

        // Raw column accessors: the L11 roots.
        if RAW_ROOT_METHODS.contains(&name) && method {
            st.note(Taint::RAW, || format!("`.{name}(..)` at line {line}"));
            let at = eval_args(self, st).into_iter().fold(recv_taint, Taint::union);
            return (at.union(Taint::RAW), close);
        }

        // Unordered-container iteration: order-dependent values.
        if UNORDERED_ITER_METHODS.contains(&name) && method {
            if let Some(root) = receiver_root(body, name_idx - 1) {
                if st.unordered.contains(&root) {
                    st.note(Taint::NONDET, || {
                        format!("unordered iteration of `{root}` at line {line}")
                    });
                    return (recv_taint.union(Taint::NONDET), close);
                }
            }
        }

        // Sorting in expression position returns unit.
        if ORDER_SANITIZERS.contains(&name) && method {
            eval_args(self, st);
            return (Taint::NONE, close);
        }

        // Workspace call with a memoized summary: translate parameter bits
        // through the argument taints (and report the callee's
        // parameter-mediated sinks at this call site).
        if let Some(callee) = graph.resolve_call_at(idx, name_idx) {
            if callee != idx {
                let callee_unit = graph.fns[callee].0;
                let callee_fn = graph.fns[callee].1;
                let mut ats: Vec<Taint> = Vec::new();
                if method && callee_fn.params.first().map(|p| p == "self").unwrap_or(false) {
                    ats.push(recv_taint);
                }
                ats.extend(eval_args(self, st));
                if record && KERNEL_FILES.contains(&callee_unit.rel_str.as_str()) {
                    st.hits.push(Hit {
                        kind: Sink::Kernel,
                        line,
                        taint: ats.iter().copied().fold(Taint::NONE, Taint::union),
                        detail: callee_fn.name.clone(),
                        via: None,
                    });
                }
                if let Some((sret, param_hits)) = self.summary(callee) {
                    let translate = |t: Taint| -> Taint {
                        t.params()
                            .filter_map(|p| ats.get(p).copied())
                            .fold(Taint::NONE, Taint::union)
                    };
                    if record {
                        for h in param_hits {
                            let mapped = translate(h.taint);
                            if mapped != Taint::NONE {
                                st.hits.push(Hit {
                                    kind: h.kind,
                                    line,
                                    taint: mapped,
                                    detail: h.detail,
                                    via: Some(callee_fn.name.clone()),
                                });
                            }
                        }
                    }
                    let kinds = Taint(sret.0 & Taint::KIND_MASK);
                    return (kinds.union(translate(sret)), close);
                }
                // Cycle or depth cap: fall back to argument propagation.
                let at = ats.into_iter().fold(Taint::NONE, Taint::union);
                return (at, close);
            }
        }

        // Unknown call: conservatively propagate receiver and arguments.
        let at = eval_args(self, st).into_iter().fold(recv_taint, Taint::union);
        (at, close)
    }

    /// Whether an env read at `line` of `fn_name` is the sanctioned
    /// `GTV_THREADS` resolution.
    fn sanctioned_env_read(&self, unit: &FileUnit, fn_name: &str, line: usize) -> bool {
        SANCTIONED_ENV_FNS.contains(&fn_name)
            && unit
                .lines
                .get(line - 1)
                .map(|l| l.strings.iter().any(|s| s == SANCTIONED_ENV_VAR))
                .unwrap_or(false)
    }

    /// Taint flowing through `{ident}` interpolations in the string
    /// literals of a macro-argument group (the lexer blanks literal text
    /// out of `code` but keeps it in `strings`).
    fn interpolation_taint(&self, st: &FnState, idx: usize, open: usize, close: usize) -> Taint {
        let (unit, f) = self.graph.fns[idx];
        let body: &[Token] = &f.body;
        let Some(first) = body.get(open) else { return Taint::NONE };
        let last_line = body.get(close).map(|t| t.line).unwrap_or(first.line);
        let mut taint = Taint::NONE;
        for line in first.line..=last_line {
            let Some(lexed) = unit.lines.get(line - 1) else { continue };
            for s in &lexed.strings {
                for name in interpolated_idents(s) {
                    taint = taint.union(st.read(&name));
                }
            }
        }
        taint
    }
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

/// CamelCase heuristic: uppercase start plus at least one lowercase char —
/// distinguishes struct literals (`Batch {`) from SCREAMING consts in
/// `if n > MAX_PARTIES {` conditions.
fn camel_case(name: &str) -> bool {
    name.starts_with(|c: char| c.is_ascii_uppercase())
        && name.chars().any(|c| c.is_ascii_lowercase())
}

/// Marks SECRET on the bindings of a secret variant's registered seed
/// field inside the pattern tokens `[lo, hi)`: the shorthand `{ seed }`
/// binds `seed`, the rename `{ seed: s }` binds `s`; unrelated fields
/// (`n_clients`) stay clean.
fn bind_secret_fields(st: &mut FnState, body: &[Token], variant: &str, lo: usize, hi: usize) {
    let fields: Vec<&str> = SECRET_VARIANT_FIELDS
        .iter()
        .filter(|(v, _)| *v == variant)
        .map(|(_, field)| *field)
        .collect();
    let mut k = lo;
    while k < hi {
        let t = &body[k];
        if t.kind == TokKind::Ident && fields.contains(&t.text.as_str()) {
            let renamed = body.get(k + 1).filter(|n| n.is(":")).and_then(|_| {
                body.get(k + 2).filter(|n| n.kind == TokKind::Ident && binding_name(&n.text))
            });
            let bound = renamed.unwrap_or(t);
            let cur = st.read(&bound.text);
            st.env.insert(bound.text.clone(), cur.union(Taint::SECRET));
        }
        k += 1;
    }
}

/// Whether an identifier may bind in a pattern (lowercase, not a keyword
/// or `_`-placeholder-like construct name).
fn binding_name(name: &str) -> bool {
    !STMT_KEYWORDS.contains(&name)
        && !matches!(name, "mut" | "ref" | "move" | "_")
        && !name.starts_with(|c: char| c.is_ascii_uppercase())
}

/// The `Type` of a `Type::name` path ending at `name_idx`, if any.
fn qualifier(body: &[Token], name_idx: usize) -> Option<&str> {
    if name_idx >= 3
        && body[name_idx - 1].is(":")
        && body[name_idx - 2].is(":")
        && body[name_idx - 3].kind == TokKind::Ident
    {
        Some(body[name_idx - 3].text.as_str())
    } else {
        None
    }
}

/// Index of the bracket closing the group opened at `open` (clamped to
/// `hi - 1` when unbalanced).
fn balanced(body: &[Token], open: usize, hi: usize) -> usize {
    let hi = hi.min(body.len());
    let mut d = 0i64;
    let mut j = open;
    while j < hi {
        match body[j].text.as_str() {
            "(" | "[" | "{" => d += 1,
            ")" | "]" | "}" => {
                d -= 1;
                if d == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    hi.saturating_sub(1).max(open)
}

/// Argument ranges of the group `open+1..close`, split at top-level commas.
fn split_args(body: &[Token], lo: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut d = 0i64;
    let mut start = lo;
    let mut j = lo;
    while j < close {
        match body[j].text.as_str() {
            "(" | "[" | "{" => d += 1,
            ")" | "]" | "}" => d -= 1,
            "," if d == 0 => {
                if j > start {
                    out.push((start, j));
                }
                start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    if close > start {
        out.push((start, close));
    }
    out
}

/// The argument tokens rendered as the old L7 message did: everything
/// inside the outer parens except `(`, space-joined.
fn arg_preview(body: &[Token], open: usize, close: usize) -> String {
    body[open + 1..close]
        .iter()
        .filter(|t| t.text != "(")
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Walks left from the `.` at `dot_idx` over a postfix chain and returns
/// the chain's root identifier (`self` for `self.clients[p].sampler`).
fn receiver_root(body: &[Token], dot_idx: usize) -> Option<String> {
    let mut j = dot_idx;
    let mut root = None;
    while j > 0 {
        j -= 1;
        match body[j].text.as_str() {
            ")" | "]" => {
                let close = body[j].text.clone();
                let open = if close == ")" { "(" } else { "[" };
                let mut d = 1i64;
                while j > 0 && d > 0 {
                    j -= 1;
                    if body[j].text == close {
                        d += 1;
                    } else if body[j].text == open {
                        d -= 1;
                    }
                }
            }
            "." | "?" => {}
            _ => {
                if body[j].kind == TokKind::Ident {
                    root = Some(body[j].text.clone());
                    if j == 0 || !matches!(body[j - 1].text.as_str(), "." | ":") {
                        break;
                    }
                } else {
                    break;
                }
            }
        }
    }
    root
}

/// Position of the top-level assignment `=` in `lo..hi` (skipping `==`,
/// `!=`, `<=`, `>=`, `=>`), with whether it is a compound op (`+=` …).
fn find_assign_eq(body: &[Token], lo: usize, hi: usize) -> Option<(usize, bool)> {
    let mut d = 0i64;
    let mut j = lo;
    while j < hi {
        match body[j].text.as_str() {
            "(" | "[" | "{" => d += 1,
            ")" | "]" | "}" => d -= 1,
            "=" if d == 0 => {
                let next_eq = body.get(j + 1).map(|t| t.is("=") || t.is(">")).unwrap_or(false);
                let prev = if j > lo { body[j - 1].text.as_str() } else { "" };
                if next_eq {
                    j += 2;
                    continue;
                }
                if matches!(prev, "=" | "!" | "<" | ">") {
                    j += 1;
                    continue;
                }
                let compound = matches!(prev, "+" | "-" | "*" | "/" | "%" | "|" | "&" | "^");
                return Some((j, compound));
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Position of a top-level `:` (not `::`) in `lo..hi` — the start of a
/// `let` type annotation.
fn top_level_colon(body: &[Token], lo: usize, hi: usize) -> Option<usize> {
    let mut d = 0i64;
    let mut j = lo;
    while j < hi {
        match body[j].text.as_str() {
            "(" | "[" | "{" => d += 1,
            ")" | "]" | "}" => d -= 1,
            ":" if d == 0 => {
                let double = body.get(j + 1).map(|t| t.is(":")).unwrap_or(false)
                    || (j > lo && body[j - 1].is(":"));
                if !double {
                    return Some(j);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// `{ident}` / `{ident:spec}` interpolation names in a format string
/// (`{{` escapes skipped, positional `{0}` ignored).
fn interpolated_idents(s: &str) -> Vec<String> {
    let cs: Vec<char> = s.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < cs.len() {
        if cs[i] != '{' {
            i += 1;
            continue;
        }
        if cs.get(i + 1) == Some(&'{') {
            i += 2;
            continue;
        }
        let mut j = i + 1;
        let mut name = String::new();
        while j < cs.len() && (cs[j].is_alphanumeric() || cs[j] == '_') {
            name.push(cs[j]);
            j += 1;
        }
        let terminated = matches!(cs.get(j), Some('}') | Some(':'));
        let named = !name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit());
        if terminated && named {
            out.push(name);
        }
        i = j.max(i + 1);
    }
    out
}

// ---------------------------------------------------------------------------
// L11 / L12 passes
// ---------------------------------------------------------------------------

/// Whether L11/L12 police this function (protocol-party code only).
fn in_flow_scope(unit: &FileUnit, in_test: bool) -> bool {
    !in_test && unit.rel_str.starts_with("crates/") && !unit.rel_str.starts_with("crates/bench/")
}

/// L11 `raw-egress`: raw feature-column data must never reach `Message`
/// construction or a wire `encode` sink except through the sanctioned
/// encoder→activation path (paper §3.1.4: parties exchange activations,
/// never columns).
pub(crate) fn lint_raw_egress(engine: &TaintEngine, findings: &mut Vec<Finding>) {
    for (idx, (unit, f)) in engine.graph.fns.iter().enumerate() {
        if !in_flow_scope(unit, f.in_test) {
            continue;
        }
        let analysis = &engine.analyses[idx];
        for hit in &analysis.hits {
            if hit.kind != Sink::Wire || !hit.taint.contains(Taint::RAW) {
                continue;
            }
            if suppressed(&unit.lines, hit.line - 1, Rule::RawEgress, &unit.rel, findings) {
                continue;
            }
            let root = analysis.note(Taint::RAW).unwrap_or("a raw column accessor").to_string();
            let flow = match &hit.via {
                Some(v) => format!("reaches wire sink `{}` through `{v}`", hit.detail),
                None => format!("reaches wire sink `{}`", hit.detail),
            };
            findings.push(Finding {
                file: unit.rel.clone(),
                line: hit.line,
                rule: Rule::RawEgress,
                message: format!(
                    "raw column data ({root}) {flow}; raw features may leave a party only as `TableTransformer::encode` activations (or `// gtv-lint: allow(raw-egress) -- why`)"
                ),
            });
        }
    }
}

/// L12 `nondet-flow`: env/time/thread-id/unordered-iteration values must
/// never flow into tensor kernels, RNG seeds, or wire payloads.
pub(crate) fn lint_nondet_flow(engine: &TaintEngine, findings: &mut Vec<Finding>) {
    for (idx, (unit, f)) in engine.graph.fns.iter().enumerate() {
        if !in_flow_scope(unit, f.in_test) {
            continue;
        }
        let analysis = &engine.analyses[idx];
        for hit in &analysis.hits {
            if hit.kind == Sink::Log || !hit.taint.contains(Taint::NONDET) {
                continue;
            }
            if suppressed(&unit.lines, hit.line - 1, Rule::NondetFlow, &unit.rel, findings) {
                continue;
            }
            let root =
                analysis.note(Taint::NONDET).unwrap_or("a nondeterministic source").to_string();
            let sink = match hit.kind {
                Sink::Wire => format!("wire sink `{}`", hit.detail),
                Sink::Seed => format!("RNG seed `{}`", hit.detail),
                Sink::Kernel => format!("tensor kernel `{}`", hit.detail),
                Sink::Log => unreachable!("Log hits are filtered above"),
            };
            let flow = match &hit.via {
                Some(v) => format!("reaches {sink} through `{v}`"),
                None => format!("reaches {sink}"),
            };
            findings.push(Finding {
                file: unit.rel.clone(),
                line: hit.line,
                rule: Rule::NondetFlow,
                message: format!(
                    "nondeterministic value ({root}) {flow}; derive it from the config seed or round counter (or `// gtv-lint: allow(nondet-flow) -- why`)"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::crate_ident;
    use crate::{lex, parse};
    use std::path::PathBuf;

    fn unit(rel: &str, src: &str) -> FileUnit {
        let lines = lex(src);
        let ast = parse::parse_file(&lines);
        FileUnit {
            rel: PathBuf::from(rel),
            rel_str: rel.to_string(),
            crate_ident: crate_ident(rel),
            lines,
            ast,
        }
    }

    fn analysis_of<'e>(engine: &'e TaintEngine, name: &str) -> &'e Analysis {
        let idx = engine.graph.fns.iter().position(|(_, f)| f.name == name).unwrap();
        &engine.analyses[idx]
    }

    #[test]
    fn let_rebinding_and_strong_update_kill_taint() {
        let units = vec![unit(
            "crates/cond/src/x.rs",
            "pub fn f(table: &Table) -> Message {\n\
             \x20   let a = table.column(0);\n\
             \x20   let b = a;\n\
             \x20   let a = 1;\n\
             \x20   Message::GenSlice(b)\n\
             }\n\
             pub fn g(table: &Table) -> Message {\n\
             \x20   let a = table.column(0);\n\
             \x20   let a = 1;\n\
             \x20   Message::GenSlice(a)\n\
             }\n",
        )];
        let engine = TaintEngine::build(&units);
        let f = analysis_of(&engine, "f");
        let wire: Vec<&Hit> = f.hits.iter().filter(|h| h.kind == Sink::Wire).collect();
        assert!(wire[0].taint.contains(Taint::RAW), "rebinding must carry taint: {wire:?}");
        let g = analysis_of(&engine, "g");
        let wire: Vec<&Hit> = g.hits.iter().filter(|h| h.kind == Sink::Wire).collect();
        assert!(!wire[0].taint.contains(Taint::RAW), "strong update must kill taint: {wire:?}");
    }

    #[test]
    fn summaries_carry_taint_through_returns_and_params() {
        let units = vec![unit(
            "crates/cond/src/x.rs",
            "fn pick(table: &Table) -> Vec<f32> {\n\
             \x20   table.as_float(2)\n\
             }\n\
             fn send(payload: Vec<f32>) -> Message {\n\
             \x20   Message::RealLogits(payload)\n\
             }\n\
             pub fn launder(table: &Table) -> Message {\n\
             \x20   let data = pick(table);\n\
             \x20   send(data)\n\
             }\n",
        )];
        let engine = TaintEngine::build(&units);
        let pick = analysis_of(&engine, "pick");
        assert!(pick.ret.contains(Taint::RAW), "return flow: {:?}", pick.ret);
        let launder = analysis_of(&engine, "launder");
        let translated: Vec<&Hit> = launder.hits.iter().filter(|h| h.via.is_some()).collect();
        assert_eq!(translated.len(), 1, "{:?}", launder.hits);
        assert!(translated[0].taint.contains(Taint::RAW));
        assert_eq!(translated[0].detail, "Message::RealLogits");
        assert_eq!(translated[0].via.as_deref(), Some("send"));
    }

    #[test]
    fn sort_kills_nondet_and_unordered_iteration_roots_it() {
        let units = vec![unit(
            "crates/nn/src/x.rs",
            "pub fn bad() -> Message {\n\
             \x20   let m = HashMap::new();\n\
             \x20   let mut out = Vec::new();\n\
             \x20   for k in m.keys() {\n\
             \x20       out.push(k);\n\
             \x20   }\n\
             \x20   Message::GenSlice(out)\n\
             }\n\
             pub fn good() -> Message {\n\
             \x20   let m = HashMap::new();\n\
             \x20   let mut out = Vec::new();\n\
             \x20   for k in m.keys() {\n\
             \x20       out.push(k);\n\
             \x20   }\n\
             \x20   out.sort_unstable();\n\
             \x20   Message::GenSlice(out)\n\
             }\n",
        )];
        let engine = TaintEngine::build(&units);
        let bad = analysis_of(&engine, "bad");
        assert!(bad.hits.iter().any(|h| h.kind == Sink::Wire && h.taint.contains(Taint::NONDET)));
        let good = analysis_of(&engine, "good");
        assert!(
            good.hits.iter().all(|h| h.kind != Sink::Wire || !h.taint.contains(Taint::NONDET)),
            "{:?}",
            good.hits
        );
    }

    #[test]
    fn sanctioned_encoder_launders_raw_taint() {
        let units = vec![unit(
            "crates/cond/src/x.rs",
            "pub fn clean(table: &Table, transformer: &TableTransformer) -> Message {\n\
             \x20   let col = table.column(0);\n\
             \x20   let acts = transformer.encode(col, 7);\n\
             \x20   Message::GenSlice(acts)\n\
             }\n",
        )];
        let engine = TaintEngine::build(&units);
        let clean = analysis_of(&engine, "clean");
        let wire: Vec<&Hit> = clean.hits.iter().filter(|h| h.kind == Sink::Wire).collect();
        assert!(!wire[0].taint.contains(Taint::RAW), "{wire:?}");
    }

    #[test]
    fn format_interpolation_reaches_log_sink() {
        let units = vec![unit(
            "crates/cond/src/x.rs",
            "pub fn announce() -> u64 {\n\
             \x20   let s = SharedShuffler::state_digest();\n\
             \x20   println!(\"digest: {s}\");\n\
             \x20   s\n\
             }\n",
        )];
        let engine = TaintEngine::build(&units);
        let a = analysis_of(&engine, "announce");
        let log: Vec<&Hit> = a.hits.iter().filter(|h| h.kind == Sink::Log).collect();
        assert_eq!(log.len(), 1);
        assert!(log[0].taint.contains(Taint::SECRET), "{log:?}");
        assert!(a.ret.contains(Taint::SECRET), "tail return: {:?}", a.ret);
    }

    #[test]
    fn seed_name_provenance_flows_through_locals() {
        let units = vec![unit(
            "crates/nn/src/x.rs",
            "pub fn derive(cfg: &Config) -> StdRng {\n\
             \x20   let s = cfg.seed;\n\
             \x20   let t = s * 3;\n\
             \x20   StdRng::seed_from_u64(t)\n\
             }\n",
        )];
        let engine = TaintEngine::build(&units);
        let a = analysis_of(&engine, "derive");
        let seed: Vec<&Hit> = a.hits.iter().filter(|h| h.kind == Sink::Seed).collect();
        assert_eq!(seed.len(), 1);
        assert!(seed[0].taint.contains(Taint::SEED), "{seed:?}");
    }

    #[test]
    fn interpolated_ident_parsing() {
        assert_eq!(interpolated_idents("a {x} b {y:>8.2} {{esc}} {0}"), vec!["x", "y"]);
        assert!(interpolated_idents("no holes").is_empty());
    }
}
