//! Workspace model: crate/module mapping, the approximate call/reference
//! graph and the type-containment graph built from parsed files.
//!
//! Resolution is intentionally conservative. A body identifier resolves to
//! a workspace function only when the target is unambiguous:
//!
//! * `Type::name(...)` resolves through the impl self-type;
//! * a bare or method call `name(...)` resolves only if exactly **one**
//!   workspace function bears that name and the name is not a ubiquitous
//!   std-style method (`new`, `len`, `iter`, …).
//!
//! Unresolvable calls simply add no edge — the graph under-approximates,
//! which keeps reachability-based passes (L6) free of name-collision false
//! positives at the cost of missing exotic call chains.

use crate::parse::{FnItem, TokKind};
use crate::FileUnit;
use std::collections::{HashMap, HashSet, VecDeque};

/// Maps a workspace-relative path to the crate identifier its code compiles
/// into (`crates/core` is the `gtv` package; the umbrella `src/` is
/// `gtv_suite`; `examples/` are grouped under a pseudo-crate).
pub fn crate_ident(rel_str: &str) -> String {
    if let Some(rest) = rel_str.strip_prefix("crates/") {
        let name = rest.split('/').next().unwrap_or("");
        return match name {
            "core" => "gtv".to_string(),
            other => format!("gtv_{}", other.replace('-', "_")),
        };
    }
    if rel_str.starts_with("src/") {
        return "gtv_suite".to_string();
    }
    if rel_str.starts_with("examples/") {
        return "gtv_examples".to_string();
    }
    String::new()
}

/// Method-style names too common to resolve by uniqueness; following them
/// would wire std-container calls into the workspace call graph.
const UBIQUITOUS: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "iter",
    "into_iter",
    "map",
    "filter",
    "collect",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "set",
    "next",
    "sum",
    "min",
    "max",
    "abs",
    "sort",
    "fmt",
    "from",
    "into",
    "as_ref",
    "as_slice",
    "to_vec",
    "to_string",
    "contains",
    "extend",
];

/// The approximate call/reference graph over every workspace function.
pub struct RefGraph<'a> {
    /// All functions, indexed densely; each entry keeps its file.
    pub fns: Vec<(&'a FileUnit, &'a FnItem)>,
    by_name: HashMap<&'a str, Vec<usize>>,
    by_qualified: HashMap<(&'a str, &'a str), Vec<usize>>,
}

impl<'a> RefGraph<'a> {
    /// Indexes every function of every file.
    pub fn build(units: &'a [FileUnit]) -> Self {
        let mut fns = Vec::new();
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_qualified: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        for unit in units {
            for f in &unit.ast.fns {
                let idx = fns.len();
                fns.push((unit, f));
                by_name.entry(f.name.as_str()).or_default().push(idx);
                if let Some(st) = &f.self_type {
                    by_qualified.entry((st.as_str(), f.name.as_str())).or_default().push(idx);
                }
            }
        }
        Self { fns, by_name, by_qualified }
    }

    /// Resolves the call whose callee identifier sits at body index `i` of
    /// function `idx`, under the conservative rules above. Returns `None`
    /// when the token is not a call site or the name is ambiguous.
    pub fn resolve_call_at(&self, idx: usize, i: usize) -> Option<usize> {
        let body = &self.fns[idx].1.body;
        let t = body.get(i)?;
        if t.kind != TokKind::Ident || body.get(i + 1).map(|n| n.text != "(").unwrap_or(true) {
            return None;
        }
        // `Type::name(...)` — resolve through the impl self-type.
        let qualified = i >= 3
            && body[i - 1].text == ":"
            && body[i - 2].text == ":"
            && body[i - 3].kind == TokKind::Ident;
        if qualified {
            let ty = body[i - 3].text.as_str();
            match self.by_qualified.get(&(ty, t.text.as_str())) {
                Some(v) if v.len() == 1 => Some(v[0]),
                _ => None,
            }
        } else if !UBIQUITOUS.contains(&t.text.as_str()) {
            match self.by_name.get(t.text.as_str()) {
                Some(v) if v.len() == 1 => Some(v[0]),
                _ => None,
            }
        } else {
            None
        }
    }

    /// Out-edges of `idx`: workspace functions its body provably calls.
    pub fn callees(&self, idx: usize) -> Vec<usize> {
        let body_len = self.fns[idx].1.body.len();
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for i in 0..body_len {
            if let Some(r) = self.resolve_call_at(idx, i) {
                if r != idx && seen.insert(r) {
                    out.push(r);
                }
            }
        }
        out
    }

    /// Every function reachable from `start` (inclusive) through resolved
    /// call edges, bounded by `cap` nodes.
    pub fn reachable(&self, start: usize, cap: usize) -> Vec<usize> {
        let mut order = vec![start];
        let mut seen: HashSet<usize> = order.iter().copied().collect();
        let mut queue: VecDeque<usize> = order.iter().copied().collect();
        while let Some(cur) = queue.pop_front() {
            if order.len() >= cap {
                break;
            }
            for next in self.callees(cur) {
                if seen.insert(next) {
                    order.push(next);
                    queue.push_back(next);
                }
            }
        }
        order
    }
}

/// Type names that transitively *contain* one of `root_types` by field —
/// the type-containment closure (e.g. a struct holding a `SharedShuffler`
/// field is itself a secret carrier).
pub fn secret_carriers(units: &[FileUnit], root_types: &[&str]) -> HashSet<String> {
    let mut carriers: HashSet<String> = root_types.iter().map(|s| s.to_string()).collect();
    loop {
        let mut grew = false;
        for unit in units {
            for ty in &unit.ast.types {
                if carriers.contains(&ty.name) {
                    continue;
                }
                let contains =
                    ty.fields.iter().any(|f| f.type_idents.iter().any(|t| carriers.contains(t)));
                if contains {
                    carriers.insert(ty.name.clone());
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    for root in root_types {
        carriers.remove(*root);
    }
    carriers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lex, parse};
    use std::path::PathBuf;

    fn unit(rel: &str, src: &str) -> FileUnit {
        let lines = lex(src);
        let ast = parse::parse_file(&lines);
        FileUnit {
            rel: PathBuf::from(rel),
            rel_str: rel.to_string(),
            crate_ident: crate_ident(rel),
            lines,
            ast,
        }
    }

    #[test]
    fn crate_ident_maps_core_umbrella_and_examples() {
        assert_eq!(crate_ident("crates/vfl/src/wire.rs"), "gtv_vfl");
        assert_eq!(crate_ident("crates/core/src/trainer.rs"), "gtv");
        assert_eq!(crate_ident("src/lib.rs"), "gtv_suite");
        assert_eq!(crate_ident("examples/quickstart.rs"), "gtv_examples");
    }

    #[test]
    fn call_graph_resolves_unique_and_qualified_names() {
        let units = vec![unit(
            "crates/vfl/src/shuffle.rs",
            "fn leaf_secret() -> u64 { 7 }\n\
             fn middle() -> u64 { leaf_secret() }\n\
             struct S;\n\
             impl S {\n    fn go(&self) -> u64 { middle() }\n}\n\
             fn qualified_call() -> u64 { S::go(&S) }\n",
        )];
        let g = RefGraph::build(&units);
        let start = g.fns.iter().position(|(_, f)| f.name == "qualified_call").unwrap();
        let reach = g.reachable(start, 64);
        let names: Vec<&str> = reach.iter().map(|&i| g.fns[i].1.name.as_str()).collect();
        assert!(names.contains(&"go"));
        assert!(names.contains(&"middle"));
        assert!(names.contains(&"leaf_secret"));
    }

    #[test]
    fn ambiguous_and_ubiquitous_names_add_no_edges() {
        let units = vec![unit(
            "crates/a/src/lib.rs",
            "fn new() -> u64 { 1 }\n\
             fn dup() -> u64 { 1 }\n\
             mod b { pub fn dup() -> u64 { 2 } }\n\
             fn caller() -> u64 { new() + dup() }\n",
        )];
        let g = RefGraph::build(&units);
        let start = g.fns.iter().position(|(_, f)| f.name == "caller").unwrap();
        assert_eq!(g.reachable(start, 64), vec![start], "no unique resolution → no edges");
    }

    #[test]
    fn containment_closure_finds_indirect_carriers() {
        let units = vec![unit(
            "crates/core/src/t.rs",
            "struct Inner { shuffler: SharedShuffler }\n\
             struct Outer { inner: Inner, n: usize }\n\
             struct Clean { n: usize }\n",
        )];
        let carriers = secret_carriers(&units, &["SharedShuffler"]);
        assert!(carriers.contains("Inner"));
        assert!(carriers.contains("Outer"));
        assert!(!carriers.contains("Clean"));
        assert!(!carriers.contains("SharedShuffler"), "roots are reported separately");
    }
}
