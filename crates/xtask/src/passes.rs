//! Semantic passes L6–L9, built on the item-level engine.
//!
//! These passes consume parsed items and the workspace graphs rather than
//! raw lines, so they can reason about *where data flows*: which functions
//! can reach shuffle-seed material, where RNG seeds come from, which casts
//! sit on the wire path, and which crates may depend on which.

use crate::dataflow::{Sink, Taint, TaintEngine};
use crate::model::secret_carriers;
use crate::parse::{FnItem, TokKind, Token};
use crate::{suppressed, FileUnit, Finding, Rule};

// ---------------------------------------------------------------------------
// Registries
// ---------------------------------------------------------------------------

/// Secret-root *functions*: calling or naming these touches shuffle-seed
/// material (paper §3.1.5 — the server must never learn the shuffle seed).
pub const SECRET_ROOT_FNS: &[&str] = &["negotiate_seed", "round_seed"];

/// Secret-root *types*: values of these types hold the negotiated seed.
pub const SECRET_ROOT_TYPES: &[&str] = &["SharedShuffler"];

/// Secret-root *variants*: constructing or matching these exposes seed
/// shares (`Message::ShuffleSeedShare.share`) or a partition seed
/// (`PartitionPlan::RandomEven.seed`).
pub const SECRET_ROOT_VARIANTS: &[&str] = &["ShuffleSeedShare", "RandomEven"];

/// Files forming the sanctioned client↔client shuffle path: the wire codec
/// and the peer-to-peer negotiation itself. Secret roots may appear here
/// freely; everywhere else they are constrained by L6.
pub const SANCTIONED_SINK_FILES: &[&str] = &["crates/vfl/src/shuffle.rs", "crates/vfl/src/wire.rs"];

/// Logging/IO macros treated as L6 sinks: seed material reaching one of
/// these would leave the protocol's trust boundary.
pub(crate) const SINK_MACROS: &[&str] = &[
    "println", "print", "eprintln", "eprint", "write", "writeln", "dbg", "info", "warn", "error",
    "debug", "trace",
];

/// Narrowing integer cast targets policed by L8 on wire/transport paths.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Tokens that mark a line as a bounds guard for a nearby cast.
const GUARD_MARKERS: &[&str] =
    &["<", ">", "MAX", "try_from", "min", "debug_assert", "assert", "checked_mul", "checked_add"];

/// How many lines above a cast a bounds guard may sit.
const GUARD_WINDOW: usize = 8;

/// The crate dependency DAG, enforced at the `use`/path level by L9.
/// `"*"` marks a top-layer crate that may depend on everything.
pub const LAYERS: &[(&str, &[&str])] = &[
    ("gtv_tensor", &[]),
    ("gtv_data", &[]),
    ("gtv_nn", &["gtv_tensor"]),
    ("gtv_encoders", &["gtv_data", "gtv_tensor"]),
    ("gtv_metrics", &["gtv_data"]),
    // The transport's pipelined fan-out encodes payloads on the sanctioned
    // deterministic worker pool, so the VFL layer sits above the tensor
    // runtime.
    ("gtv_vfl", &["gtv_data", "gtv_tensor"]),
    ("gtv_ml", &["gtv_data", "gtv_tensor", "gtv_nn"]),
    ("gtv_cond", &["gtv_data", "gtv_encoders", "gtv_tensor"]),
    ("gtv", &["gtv_tensor", "gtv_nn", "gtv_data", "gtv_encoders", "gtv_cond", "gtv_vfl"]),
    // Serving sits above the umbrella: it loads trained synthesizers and
    // re-uses the transport's endpoint/error vocabulary, but no lower
    // layer may know about request coalescing.
    ("gtv_serve", &["gtv", "gtv_tensor", "gtv_data", "gtv_vfl"]),
    ("gtv_cli", &["*"]),
    ("gtv_bench", &["*"]),
    ("gtv_suite", &["*"]),
    ("gtv_examples", &["*"]),
    ("gtv_xtask", &[]),
];

/// Whether crate `owner` may reference crate `dep` under the layer DAG.
/// `None` if `owner` is not in the registry (unknown crates are exempt).
pub fn layer_allows(owner: &str, dep: &str) -> Option<bool> {
    let (_, allowed) = LAYERS.iter().find(|(c, _)| *c == owner)?;
    if owner == dep || allowed.contains(&"*") {
        return Some(true);
    }
    Some(allowed.contains(&dep))
}

// ---------------------------------------------------------------------------
// Scope helpers
// ---------------------------------------------------------------------------

fn in_l6_scope(unit: &FileUnit) -> bool {
    // Protocol-party code only: crate sources, minus the bench/report
    // driver. `examples/` and the umbrella are demo drivers that print
    // run configuration by design.
    unit.rel_str.starts_with("crates/") && !unit.rel_str.starts_with("crates/bench/")
}

fn sanctioned(unit: &FileUnit) -> bool {
    SANCTIONED_SINK_FILES.contains(&unit.rel_str.as_str())
}

pub(crate) fn file_stem(unit: &FileUnit) -> &str {
    unit.rel_str.rsplit('/').next().unwrap_or("").trim_end_matches(".rs")
}

/// Whether a function is server-side: a `server_*` fn, a method of a
/// `Server*` type, or anything inside a `server` module/file.
fn is_server_item(unit: &FileUnit, f: &FnItem) -> bool {
    f.name.starts_with("server_")
        || f.self_type.as_deref().is_some_and(|t| t.starts_with("Server"))
        || f.module.iter().any(|m| m == "server" || m.starts_with("server_"))
        || file_stem(unit) == "server"
        || file_stem(unit).starts_with("server_")
}

fn all_secret_roots() -> impl Iterator<Item = &'static str> {
    SECRET_ROOT_FNS.iter().chain(SECRET_ROOT_TYPES).chain(SECRET_ROOT_VARIANTS).copied()
}

/// The first secret root referenced by `f`'s body, with its line.
fn direct_secret_ref(f: &FnItem) -> Option<(&'static str, usize)> {
    all_secret_roots().find_map(|root| f.reference_line(root).map(|line| (root, line)))
}

// ---------------------------------------------------------------------------
// L6 privacy-flow
// ---------------------------------------------------------------------------

/// Registry-drift check: the secret-root registry must keep naming real
/// items. If the wire enum loses or renames `ShuffleSeedShare.share`, or
/// the partition plan loses `RandomEven.seed`, L6 would silently stop
/// guarding them — that rot is itself a finding.
fn lint_registry_drift(units: &[FileUnit], findings: &mut Vec<Finding>) {
    for unit in units {
        for ty in &unit.ast.types {
            if !ty.is_enum {
                continue;
            }
            let expected: Option<(&str, &str)> = match ty.name.as_str() {
                "Message" if unit.rel_str == "crates/vfl/src/wire.rs" => {
                    Some(("ShuffleSeedShare", "share"))
                }
                "PartitionPlan" if unit.crate_ident == "gtv_vfl" => Some(("RandomEven", "seed")),
                _ => None,
            };
            let Some((variant, field)) = expected else { continue };
            if !ty.variants.iter().any(|v| v == variant) {
                findings.push(Finding {
                    file: unit.rel.clone(),
                    line: ty.line,
                    rule: Rule::PrivacyFlow,
                    message: format!(
                        "`enum {}` has no `{variant}` variant; the L6 secret-root registry is stale — update SECRET_ROOT_VARIANTS in gtv-xtask",
                        ty.name
                    ),
                });
                continue;
            }
            let variant_fields: Vec<_> =
                ty.fields.iter().filter(|f| f.variant.as_deref() == Some(variant)).collect();
            if !variant_fields.iter().any(|f| f.name == field) {
                let line = variant_fields.first().map(|f| f.line).unwrap_or(ty.line);
                findings.push(Finding {
                    file: unit.rel.clone(),
                    line,
                    rule: Rule::PrivacyFlow,
                    message: format!(
                        "`{}::{variant}` has no `{field}` field; the L6 secret-root registry tracks `{variant}.{field}` — update SECRET_ROOT_VARIANTS in gtv-xtask",
                        ty.name
                    ),
                });
            }
        }
    }
}

/// L6: shuffle-seed material must stay on the client↔client path — no
/// server-side function may reach a secret root (directly or through the
/// call graph), and no function outside the sanctioned path may route seed
/// material into a logging/IO sink.
///
/// The server-reachability and type-containment halves are name-registry
/// checks (kept as drift guards); the sink half runs on the taint engine:
/// a logging macro fires only when SECRET-tainted data actually flows into
/// it (including through `{ident}` format-string interpolation), not
/// merely when a secret root is named somewhere in the same function.
pub fn lint_privacy_flow(units: &[FileUnit], engine: &TaintEngine, findings: &mut Vec<Finding>) {
    lint_registry_drift(units, findings);
    let graph = &engine.graph;
    let carriers = secret_carriers(units, SECRET_ROOT_TYPES);

    for (idx, (unit, f)) in graph.fns.iter().enumerate() {
        if !in_l6_scope(unit) || f.in_test {
            continue;
        }
        if is_server_item(unit, f) {
            // Reachability: server code must not touch secret roots,
            // directly or through any resolvable call chain.
            for reached in graph.reachable(idx, 256) {
                let (_, rf) = graph.fns[reached];
                let Some((root, _)) = direct_secret_ref(rf) else {
                    continue;
                };
                if !suppressed(&unit.lines, f.line - 1, Rule::PrivacyFlow, &unit.rel, findings) {
                    let message = if reached == idx {
                        format!(
                            "server-side `{}` references secret root `{root}`; the server must never observe shuffle-seed material (§3.1.5)",
                            f.name
                        )
                    } else {
                        format!(
                            "server-side `{}` reaches `{}`, which references secret root `{root}`; the server must never observe shuffle-seed material (§3.1.5)",
                            f.name, rf.name
                        )
                    };
                    findings.push(Finding {
                        file: unit.rel.clone(),
                        line: f.line,
                        rule: Rule::PrivacyFlow,
                        message,
                    });
                }
                break;
            }
            // Type containment: holding a type that contains a
            // SharedShuffler is as bad as holding the shuffler.
            if let Some(carrier) = carriers.iter().find(|c| f.references(c)).cloned() {
                let line = f.reference_line(&carrier).unwrap_or(f.line);
                if !suppressed(&unit.lines, line - 1, Rule::PrivacyFlow, &unit.rel, findings) {
                    findings.push(Finding {
                        file: unit.rel.clone(),
                        line,
                        rule: Rule::PrivacyFlow,
                        message: format!(
                            "server-side `{}` references `{carrier}`, which contains secret shuffle state (type-containment closure of `SharedShuffler`)",
                            f.name
                        ),
                    });
                }
            }
        }
        // Sink check, on taint flows: a logging macro is a finding only
        // when SECRET-tainted data actually reaches it.
        if sanctioned(unit) {
            continue;
        }
        let analysis = &engine.analyses[idx];
        for hit in &analysis.hits {
            if hit.kind != Sink::Log || !hit.taint.contains(Taint::SECRET) {
                continue;
            }
            if suppressed(&unit.lines, hit.line - 1, Rule::PrivacyFlow, &unit.rel, findings) {
                continue;
            }
            let root = analysis.note(Taint::SECRET).unwrap_or("shuffle-seed material");
            findings.push(Finding {
                file: unit.rel.clone(),
                line: hit.line,
                rule: Rule::PrivacyFlow,
                message: format!(
                    "`{}!` inside `{}`, which handles shuffle-seed material (`{root}`); seed material must never reach logging/IO",
                    hit.detail, f.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// L7 rng-provenance
// ---------------------------------------------------------------------------

/// L7: every RNG seeding call outside tests/bench must derive its seed
/// from a seed/round value. Provenance is taint-based: the SEED bit roots
/// at any name containing `seed`/`round` and propagates through lets,
/// assignments and function returns, so `let s = cfg.seed; seed_from_u64(s)`
/// passes where the old name-at-the-call-site rule could not see the flow.
/// Strictly more precise than the registry check: every previously
/// accepted call still passes (a seed-named arg roots SEED directly).
pub fn lint_rng_provenance(engine: &TaintEngine, findings: &mut Vec<Finding>) {
    for (idx, (unit, f)) in engine.graph.fns.iter().enumerate() {
        if unit.rel_str.starts_with("crates/bench/") || f.in_test {
            continue;
        }
        let analysis = &engine.analyses[idx];
        for hit in &analysis.hits {
            // `via` hits are a callee's ctor reported at our call site; the
            // callee judges its own call under its own parameters.
            if hit.kind != Sink::Seed || hit.via.is_some() {
                continue;
            }
            if hit.taint.contains(Taint::SEED) {
                continue;
            }
            if suppressed(&unit.lines, hit.line - 1, Rule::RngProvenance, &unit.rel, findings) {
                continue;
            }
            findings.push(Finding {
                file: unit.rel.clone(),
                line: hit.line,
                rule: Rule::RngProvenance,
                message: format!(
                    "`{}` does not derive from a seed/round value; thread a config `seed` or round counter through (or `// gtv-lint: allow(rng-provenance) -- why`)",
                    hit.detail
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// L8 cast-safety
// ---------------------------------------------------------------------------

/// L8: narrowing `as` casts on wire/transport encode/decode paths need an
/// adjacent bounds guard (comparison, `MAX` check, `try_from`, clamp or
/// assert naming the cast operand) or a justified allow.
pub fn lint_cast_safety(units: &[FileUnit], findings: &mut Vec<Finding>) {
    for unit in units {
        if !unit.rel_str.starts_with("crates/") {
            continue;
        }
        let stem = file_stem(unit);
        // The serving crate is wire-adjacent end to end (frames in, frames
        // out), so every one of its sources is in scope, not just `wire.rs`.
        let serve = unit.rel_str.starts_with("crates/serve/src/");
        if !serve
            && !stem.contains("wire")
            && !stem.contains("transport")
            && !stem.contains("socket")
        {
            continue;
        }
        for f in &unit.ast.fns {
            if f.in_test {
                continue;
            }
            let body = &f.body;
            for i in 0..body.len() {
                if !(body[i].is_ident("as")
                    && body
                        .get(i + 1)
                        .map(|n| NARROW_TARGETS.contains(&n.text.as_str()))
                        .unwrap_or(false))
                {
                    continue;
                }
                let target = &body[i + 1].text;
                let Some(root) = cast_operand_root(body, i) else {
                    // Literal casts (`1 as u8`) are compile-time checked.
                    continue;
                };
                let line = body[i].line;
                if has_adjacent_guard(body, &root, line) {
                    continue;
                }
                if !suppressed(&unit.lines, line - 1, Rule::CastSafety, &unit.rel, findings) {
                    findings.push(Finding {
                        file: unit.rel.clone(),
                        line,
                        rule: Rule::CastSafety,
                        message: format!(
                            "narrowing `as {target}` of `{root}` on a wire/transport path without an adjacent bounds guard; guard the range or `// gtv-lint: allow(cast-safety) -- why`"
                        ),
                    });
                }
            }
        }
    }
}

/// Walks left from the `as` token over a postfix chain
/// (`root.method().field as u32`) and returns the chain's root identifier.
fn cast_operand_root(body: &[Token], as_idx: usize) -> Option<String> {
    let mut j = as_idx;
    let mut root: Option<String> = None;
    while j > 0 {
        j -= 1;
        match body[j].text.as_str() {
            ")" | "]" => {
                // Skip the balanced group backwards.
                let close = body[j].text.clone();
                let open = if close == ")" { "(" } else { "[" };
                let mut d = 1i64;
                while j > 0 && d > 0 {
                    j -= 1;
                    if body[j].text == close {
                        d += 1;
                    } else if body[j].text == open {
                        d -= 1;
                    }
                }
            }
            "." | "?" => {}
            "*" | "&" => break, // deref/ref prefix ends the chain leftwards
            _ => {
                if body[j].kind == TokKind::Ident {
                    root = Some(body[j].text.clone());
                    // Keep walking: `a.b.c as u32` roots at `a`.
                    if j == 0 || !matches!(body[j - 1].text.as_str(), "." | ":") {
                        break;
                    }
                } else {
                    break;
                }
            }
        }
    }
    root
}

/// Whether a guard line naming `root` appears within the window above
/// (or on) the cast line inside this body.
fn has_adjacent_guard(body: &[Token], root: &str, cast_line: usize) -> bool {
    let low = cast_line.saturating_sub(GUARD_WINDOW);
    let mut lines_with_root = std::collections::HashSet::new();
    let mut lines_with_marker = std::collections::HashSet::new();
    for (i, t) in body.iter().enumerate() {
        if t.line < low || t.line > cast_line {
            continue;
        }
        if t.is_ident(root) {
            lines_with_root.insert(t.line);
        }
        // `<`/`>` count as comparison guards only standalone: the `>` of a
        // match arm `=>` or return type `->`, and shift halves (`<<`, `>>`),
        // are not bounds checks.
        let angle_as_comparison = (t.text == "<" || t.text == ">")
            && !(i > 0 && matches!(body[i - 1].text.as_str(), "=" | "-" | "<" | ">"))
            && !(body.get(i + 1).map(|n| n.text == "<" || n.text == ">").unwrap_or(false));
        let non_angle_marker = t.text != "<"
            && t.text != ">"
            && (GUARD_MARKERS.contains(&t.text.as_str())
                || (t.kind == TokKind::Ident && t.text.starts_with("debug_assert")));
        if angle_as_comparison || non_angle_marker {
            lines_with_marker.insert(t.line);
        }
    }
    lines_with_root.iter().any(|l| lines_with_marker.contains(l) && *l < cast_line)
        || (lines_with_root.contains(&cast_line)
            && lines_with_marker.contains(&cast_line)
            && body.iter().any(|t| {
                t.line == cast_line
                    && (t.text.starts_with("debug_assert")
                        || t.text == "try_from"
                        || t.text == "min")
            }))
}

// ---------------------------------------------------------------------------
// L9 layering
// ---------------------------------------------------------------------------

/// L9: the crate dependency DAG is enforced at the `use`-statement (and
/// qualified-path) level — no lower layer may reference an upper one.
pub fn lint_layering(units: &[FileUnit], findings: &mut Vec<Finding>) {
    for unit in units {
        let owner = unit.crate_ident.clone();
        if owner.is_empty() {
            continue;
        }
        let check = |dep: &str, line: usize, findings: &mut Vec<Finding>| {
            if !(dep == "gtv" || dep.starts_with("gtv_")) {
                return;
            }
            match layer_allows(&owner, dep) {
                Some(true) | None => {}
                Some(false) => {
                    if !suppressed(&unit.lines, line - 1, Rule::Layering, &unit.rel, findings) {
                        findings.push(Finding {
                            file: unit.rel.clone(),
                            line,
                            rule: Rule::Layering,
                            message: format!(
                                "`{dep}` is not below `{owner}` in the layer DAG (tensor/data ← nn/encoders/metrics/vfl ← ml/cond ← core ← cli/bench); invert the dependency or move the code down"
                            ),
                        });
                    }
                }
            }
        };
        for import in &unit.ast.imports {
            if import.in_test {
                // cfg(test) imports may use dev-dependencies, which sit
                // outside the runtime layer DAG.
                continue;
            }
            if let Some(first) = import.segments.first() {
                check(first, import.line, findings);
            }
        }
        for f in &unit.ast.fns {
            if f.in_test {
                continue;
            }
            for t in &f.body {
                if t.kind == TokKind::Ident && (t.text == "gtv" || t.text.starts_with("gtv_")) {
                    check(&t.text, t.line, findings);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_registry_is_a_dag() {
        // Kahn's algorithm over the registry; `*` entries depend on all
        // non-`*` crates. A cycle would make the lint unsatisfiable.
        let names: Vec<&str> = LAYERS.iter().map(|(n, _)| *n).collect();
        let deps_of = |name: &str| -> Vec<&str> {
            let (_, allowed) = LAYERS.iter().find(|(n, _)| *n == name).unwrap_or(&("", &[]));
            if allowed.contains(&"*") {
                names
                    .iter()
                    .filter(|n| {
                        **n != name && !LAYERS.iter().any(|(c, a)| c == *n && a.contains(&"*"))
                    })
                    .copied()
                    .collect()
            } else {
                allowed.to_vec()
            }
        };
        let mut resolved: Vec<&str> = Vec::new();
        let mut remaining: Vec<&str> = names.clone();
        while !remaining.is_empty() {
            let before = remaining.len();
            remaining.retain(|name| {
                let ready = deps_of(name).iter().all(|d| resolved.contains(d));
                if ready {
                    resolved.push(name);
                }
                !ready
            });
            assert!(remaining.len() < before, "layer registry has a cycle: {remaining:?}");
        }
    }

    #[test]
    fn layer_allows_follows_the_registry() {
        assert_eq!(layer_allows("gtv_nn", "gtv_tensor"), Some(true));
        assert_eq!(layer_allows("gtv_tensor", "gtv_nn"), Some(false));
        assert_eq!(layer_allows("gtv_cli", "gtv"), Some(true), "top layer may use everything");
        assert_eq!(layer_allows("gtv", "gtv_ml"), Some(false), "core may not reach up to ml");
        assert_eq!(layer_allows("not_a_crate", "gtv"), None);
    }
}
