//! Source-level static analysis enforcing GTV's protocol invariants.
//!
//! The GTV protocol's privacy argument (training-with-shuffling, §3.1.5 of
//! the paper) holds only if every shuffle and sample draw is seeded and
//! reproducible, and the VFL runtime only scales if protocol paths never
//! panic mid-round. This crate is a dependency-free analyzer over the
//! workspace sources that enforces those invariants as lint rules:
//!
//! * **L1 `panic`** — no `unwrap()` / `expect(` / `panic!` /
//!   `unreachable!` / `todo!` in protocol/runtime paths
//!   (`crates/vfl/src/{transport,socket,wire,shuffle,psi}.rs`,
//!   `crates/core/src/{trainer,synth}.rs`, and the serving stack
//!   `crates/serve/src/{engine,registry,server,wire}.rs`), outside
//!   `#[cfg(test)]` code;
//! * **L2 `determinism`** — no `thread_rng`, `from_entropy`,
//!   `SystemTime::now`, `Instant::now` outside `crates/bench` and
//!   `#[cfg(test)]` code, anywhere in the workspace; and no ad-hoc
//!   `thread::spawn` / `thread::Builder` outside the deterministic worker
//!   pool (`crates/tensor/src/pool.rs`), whose fixed problem-size-only
//!   partitioning is the sanctioned source of parallelism;
//! * **L3 `float-eq`** — no `==` / `!=` against float literals in
//!   `crates/metrics` and `crates/ml` (literal-adjacent heuristic; exact
//!   float equality breaks metric stability across backends);
//! * **L4 `wire`** — every variant of `enum Message` in
//!   `crates/vfl/src/wire.rs` has both an encode and a decode arm;
//! * **L5 `allow-justification`** — every `#[allow(clippy::...)]` carries a
//!   trailing `//` justification comment;
//! * **L6 `privacy-flow`** — shuffle-seed material (the secret roots in
//!   [`passes`]) is never reachable from server-side code and never routed
//!   into a logging/IO sink outside the sanctioned client↔client path;
//! * **L7 `rng-provenance`** — every `seed_from_u64` / `from_seed` call
//!   outside tests and `crates/bench` derives its argument from a value
//!   named `seed`/`round`, never a literal or ambient source;
//! * **L8 `cast-safety`** — narrowing `as` casts on wire/transport paths
//!   (including every `crates/serve/src/` source) carry an adjacent bounds
//!   guard or a justified allow;
//! * **L9 `layering`** — the crate dependency DAG is enforced at the
//!   `use`-statement (and qualified-path) level;
//! * **L10 `protocol-order`** — every send/recv sequence extracted from
//!   `crates/core/src/trainer.rs` and `crates/vfl/src/{transport,socket}.rs`
//!   is a path through the declared round machine in [`protocol`], every
//!   `ServeFrame` sequence in `crates/serve/src/{server,engine}.rs` is a
//!   path through the serving-session machine, both wire enums stay in
//!   bijection with their machines (drift checks), and no party sends a
//!   variant the machine reserves for the other direction;
//! * **L11 `raw-egress`** — raw feature-column data (partition table
//!   column accessors) must never reach `Message` construction or a wire
//!   `encode` sink except through the sanctioned
//!   `TableTransformer::encode` → activation path (paper §3.1.4);
//! * **L12 `nondet-flow`** — values from `std::env` (except `GTV_THREADS`
//!   via the sanctioned thread resolution), wall clocks, thread ids and
//!   unordered `HashMap`/`HashSet` iteration must never flow into tensor
//!   kernels, RNG seeds, or wire payloads.
//!
//! L1–L5 are line-lexer rules. L6–L12 run on the item-level engine: the
//! [`parse`] module's recursive-descent parser extracts items (structs and
//! enums with field types, fns with bodies, imports), [`model`] builds
//! the type-containment and approximate call/reference graphs, and
//! [`dataflow`] layers flow-sensitive per-function taint tracking with
//! memoized interprocedural summaries on top (L6's sink half, L7, L11 and
//! L12 are taint-driven; the name-registry halves of L6 remain as drift
//! guards).
//!
//! Operationally, [`report`] renders findings as SARIF 2.1.0
//! (`lint --sarif`) and implements the checked-in baseline file
//! (`lint --baseline <path>` fails only on findings not in the baseline;
//! `--update-baseline` regenerates it deterministically).
//!
//! A finding on line *N* is suppressed by an inline escape hatch on line
//! *N* or *N−1*:
//!
//! ```text
//! // gtv-lint: allow(<rule>) -- <justification>
//! ```
//!
//! The justification after `--` is mandatory; a justification-free
//! `gtv-lint: allow` is itself reported. Analysis is line-based on
//! comment- and string-stripped source, so tokens inside string literals
//! or comments never fire.

use std::fmt;
use std::path::{Path, PathBuf};

pub(crate) mod dataflow;
pub(crate) mod model;
pub(crate) mod parse;
pub(crate) mod passes;
pub mod protocol;
pub mod report;

/// The lint rules, L1–L12.
///
/// `Ord` follows declaration order (L1 first) and is part of the stable
/// finding sort, so JSON output is byte-identical across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// L1: panic-freedom of protocol/runtime paths.
    Panic,
    /// L2: all randomness and time must be seeded/deterministic.
    Determinism,
    /// L3: no float equality in metric code.
    FloatEq,
    /// L4: wire-format exhaustiveness.
    Wire,
    /// L5: clippy `allow`s must be justified.
    AllowJustification,
    /// L6: shuffle-seed material stays off server-side and logging paths.
    PrivacyFlow,
    /// L7: RNG seeds derive from named seed/round values.
    RngProvenance,
    /// L8: narrowing casts on wire paths carry bounds guards.
    CastSafety,
    /// L9: the crate dependency DAG admits no upward references.
    Layering,
    /// L10: trainer/transport send/recv order follows the protocol machine.
    ProtocolOrder,
    /// L11: raw feature columns never reach a wire sink unencoded.
    RawEgress,
    /// L12: nondeterministic values never reach kernels, seeds, or wire.
    NondetFlow,
}

impl Rule {
    /// The identifier used in `gtv-lint: allow(<id>)`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Determinism => "determinism",
            Rule::FloatEq => "float-eq",
            Rule::Wire => "wire",
            Rule::AllowJustification => "allow-justification",
            Rule::PrivacyFlow => "privacy-flow",
            Rule::RngProvenance => "rng-provenance",
            Rule::CastSafety => "cast-safety",
            Rule::Layering => "layering",
            Rule::ProtocolOrder => "protocol-order",
            Rule::RawEgress => "raw-egress",
            Rule::NondetFlow => "nondet-flow",
        }
    }

    /// The L-number label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Rule::Panic => "L1/panic",
            Rule::Determinism => "L2/determinism",
            Rule::FloatEq => "L3/float-eq",
            Rule::Wire => "L4/wire",
            Rule::AllowJustification => "L5/allow-justification",
            Rule::PrivacyFlow => "L6/privacy-flow",
            Rule::RngProvenance => "L7/rng-provenance",
            Rule::CastSafety => "L8/cast-safety",
            Rule::Layering => "L9/layering",
            Rule::ProtocolOrder => "L10/protocol-order",
            Rule::RawEgress => "L11/raw-egress",
            Rule::NondetFlow => "L12/nondet-flow",
        }
    }

    /// Every rule, in L-number order (drives SARIF rule metadata and the
    /// usage text; `Ord` matches this order).
    pub const ALL: [Rule; 12] = [
        Rule::Panic,
        Rule::Determinism,
        Rule::FloatEq,
        Rule::Wire,
        Rule::AllowJustification,
        Rule::PrivacyFlow,
        Rule::RngProvenance,
        Rule::CastSafety,
        Rule::Layering,
        Rule::ProtocolOrder,
        Rule::RawEgress,
        Rule::NondetFlow,
    ];

    /// One-line rule description (SARIF `shortDescription`).
    pub fn description(self) -> &'static str {
        match self {
            Rule::Panic => "no unwrap/expect/panic! in protocol paths",
            Rule::Determinism => "all randomness, time and threads seeded/deterministic",
            Rule::FloatEq => "no float-literal equality in metric code",
            Rule::Wire => "every Message variant has encode and decode arms",
            Rule::AllowJustification => "every clippy allow carries a justification",
            Rule::PrivacyFlow => "shuffle-seed material stays off server and logging paths",
            Rule::RngProvenance => "RNG seeds derive from a seed/round value",
            Rule::CastSafety => "narrowing casts on wire paths carry bounds guards",
            Rule::Layering => "crate imports respect the dependency DAG",
            Rule::ProtocolOrder => "send/recv order follows the protocol machine",
            Rule::RawEgress => {
                "raw feature columns reach the wire only as sanctioned encoder activations"
            }
            Rule::NondetFlow => {
                "env/time/thread-id/unordered-iteration values never reach kernels, seeds or wire"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// The finding as one line of JSON (for `lint --json` / CI annotations).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"label\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            self.rule.id(),
            self.rule.label(),
            json_escape(&self.file.display().to_string().replace('\\', "/")),
            self.line,
            json_escape(&self.message),
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// Wall-time of one analysis pass (for the `lint` timing report).
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// Pass label (`L1/panic`, …, or `parse` for load+lex+parse).
    pub label: &'static str,
    /// Elapsed milliseconds.
    pub millis: f64,
}

/// Error reading the workspace sources.
#[derive(Debug)]
pub struct LintError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint error: {}", self.message)
    }
}

impl std::error::Error for LintError {}

/// Files subject to the L1 panic-freedom rule (protocol/runtime paths).
const L1_FILES: &[&str] = &[
    "crates/vfl/src/transport.rs",
    "crates/vfl/src/socket.rs",
    "crates/vfl/src/wire.rs",
    "crates/vfl/src/shuffle.rs",
    "crates/vfl/src/psi.rs",
    "crates/core/src/trainer.rs",
    "crates/core/src/synth.rs",
    "crates/serve/src/engine.rs",
    "crates/serve/src/registry.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/wire.rs",
];

/// Tokens denied by L1 (matched on identifier boundaries).
const L1_TOKENS: &[&str] =
    &["unwrap", "expect", "panic!", "unreachable!", "todo!", "unimplemented!"];

/// Tokens denied by L2.
const L2_TOKENS: &[&str] = &["thread_rng", "from_entropy", "SystemTime::now", "Instant::now"];

/// One source line after lexing: executable text, trailing comment, test flag.
#[derive(Debug, Default, Clone)]
pub(crate) struct LexedLine {
    /// The line with comments and string/char literal *contents* blanked.
    pub(crate) code: String,
    /// Text of any `//` comment on the line (block comments excluded).
    pub(crate) comment: String,
    /// Whether the line sits inside a `#[cfg(test)]` item.
    pub(crate) in_test: bool,
    /// Contents of string literals that open *and* close on this line, in
    /// order of appearance. Kept out of `code` so structural scans never see
    /// literal text; L10 reads them to resolve expected-kind arguments like
    /// `gather(.., "SynthLogits")`. Multi-line literals are not captured.
    pub(crate) strings: Vec<String>,
}

/// One scanned source file: lexed lines plus the parsed item structure the
/// semantic passes consume.
pub(crate) struct FileUnit {
    /// Workspace-relative path.
    pub(crate) rel: PathBuf,
    /// `rel` rendered with forward slashes.
    pub(crate) rel_str: String,
    /// Crate identifier the file compiles into ([`model::crate_ident`]).
    pub(crate) crate_ident: String,
    /// Lexed source lines.
    pub(crate) lines: Vec<LexedLine>,
    /// Parsed items (imports, types, fns).
    pub(crate) ast: parse::FileAst,
}

/// Strips comments and literal contents, tracks `#[cfg(test)]` regions.
///
/// This is a line-oriented lexer, not a parser: it understands `//` and
/// nested `/* */` comments, plain/raw string literals, char literals vs.
/// lifetimes, and brace depth — enough to make token scans reliable.
pub(crate) fn lex(source: &str) -> Vec<LexedLine> {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        Block(usize),
        Str,
        RawStr(usize),
    }
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    // Brace depth, and the depth at which a #[cfg(test)] item opened.
    let mut depth: i64 = 0;
    let mut pending_test_attr = false;
    let mut test_depth: Option<i64> = None;
    // Accumulates the current string literal; captured per line only when
    // the literal opened on the same line it closes.
    let mut str_buf = String::new();
    let mut str_opened_this_line = false;

    for raw in source.lines() {
        let bytes: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut strings = Vec::new();
        let mut i = 0;
        let in_test_at_start = test_depth.is_some();
        if matches!(mode, Mode::Str | Mode::RawStr(_)) {
            // The open literal spans lines; spanning literals aren't captured.
            str_opened_this_line = false;
        }
        // Pre-scan so `#[cfg(test)] mod t {` on one line still registers
        // before its own `{` is processed.
        if mode == Mode::Code && raw.contains("#[cfg(test)]") {
            pending_test_attr = true;
        }
        while i < bytes.len() {
            match mode {
                Mode::Block(ref mut n) => {
                    if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        *n -= 1;
                        if *n == 0 {
                            mode = Mode::Code;
                        }
                        i += 2;
                    } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        *n += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                Mode::Str => {
                    if bytes[i] == '\\' {
                        str_buf.push(bytes[i]);
                        if let Some(&next) = bytes.get(i + 1) {
                            str_buf.push(next);
                        }
                        i += 2;
                    } else if bytes[i] == '"' {
                        mode = Mode::Code;
                        code.push('"');
                        if str_opened_this_line {
                            strings.push(std::mem::take(&mut str_buf));
                        }
                        i += 1;
                    } else {
                        str_buf.push(bytes[i]);
                        i += 1;
                    }
                    continue;
                }
                Mode::RawStr(hashes) => {
                    if bytes[i] == '"'
                        && bytes[i + 1..].iter().take(hashes).filter(|&&c| c == '#').count()
                            == hashes
                    {
                        mode = Mode::Code;
                        code.push('"');
                        if str_opened_this_line {
                            strings.push(std::mem::take(&mut str_buf));
                        }
                        i += 1 + hashes;
                    } else {
                        str_buf.push(bytes[i]);
                        i += 1;
                    }
                    continue;
                }
                Mode::Code => {}
            }
            let c = bytes[i];
            match c {
                '/' if bytes.get(i + 1) == Some(&'/') => {
                    comment = raw[raw.char_indices().nth(i).map_or(0, |(b, _)| b)..].to_string();
                    break;
                }
                '/' if bytes.get(i + 1) == Some(&'*') => {
                    mode = Mode::Block(1);
                    i += 2;
                }
                '"' => {
                    code.push('"');
                    mode = Mode::Str;
                    str_buf.clear();
                    str_opened_this_line = true;
                    i += 1;
                }
                'r' if bytes.get(i + 1) == Some(&'"')
                    || (bytes.get(i + 1) == Some(&'#')
                        && bytes[i + 1..].iter().find(|&&x| x != '#') == Some(&'"')) =>
                {
                    let hashes = bytes[i + 1..].iter().take_while(|&&x| x == '#').count();
                    code.push('"');
                    mode = Mode::RawStr(hashes);
                    str_buf.clear();
                    str_opened_this_line = true;
                    i += 2 + hashes;
                }
                '\'' => {
                    // Char literal ('x', '\n', '\u{..}') vs. lifetime ('a).
                    let rest = &bytes[i + 1..];
                    let close = if rest.first() == Some(&'\\') {
                        rest.iter().skip(1).position(|&x| x == '\'').map(|p| p + 1)
                    } else if rest.len() >= 2 && rest[1] == '\'' {
                        Some(1)
                    } else {
                        None
                    };
                    if let Some(p) = close {
                        code.push('\'');
                        code.push('\'');
                        i += p + 2;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                '{' => {
                    depth += 1;
                    if pending_test_attr {
                        test_depth = Some(depth);
                        pending_test_attr = false;
                    }
                    code.push(c);
                    i += 1;
                }
                '}' => {
                    if test_depth == Some(depth) {
                        test_depth = None;
                    }
                    depth -= 1;
                    code.push(c);
                    i += 1;
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        out.push(LexedLine {
            code,
            comment,
            in_test: in_test_at_start || test_depth.is_some() || pending_test_attr,
            strings,
        });
    }
    out
}

/// Whether `code` contains `token` on identifier boundaries.
fn has_token(code: &str, token: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0 || !ident(code[..at].chars().next_back().unwrap_or(' '));
        let after = code[at + token.len()..].chars().next();
        // `!`-terminated tokens are complete; identifiers must not continue.
        let after_ok = token.ends_with('!') || !after.map(ident).unwrap_or(false);
        if before_ok && after_ok {
            return true;
        }
        start = at + token.len();
    }
    false
}

/// Whether the escape hatch `gtv-lint: allow(<rule>) -- <why>` covers
/// `rule` in this comment. Returns `Some(true)` if covered with a
/// justification, `Some(false)` if the allow matches but lacks one,
/// `None` if no allow for this rule is present.
fn allow_covers(comment: &str, rule: Rule) -> Option<bool> {
    let marker = format!("gtv-lint: allow({})", rule.id());
    let pos = comment.find(&marker)?;
    let rest = &comment[pos + marker.len()..];
    let justified = rest.find("--").map(|p| !rest[p + 2..].trim().is_empty()).unwrap_or(false);
    Some(justified)
}

/// Applies the escape hatch for (file, line) and records malformed allows.
///
/// Only an ordinary `//` comment binds: doc comments (`///`, `//!`) are
/// documentation *text*, not directives, so an allow spelled inside one —
/// e.g. a doc example quoting the escape hatch — suppresses nothing.
/// String literals never reach here at all (the lexer routes them into
/// `code`, with contents blanked, never into `comment`).
pub(crate) fn suppressed(
    lines: &[LexedLine],
    idx: usize,
    rule: Rule,
    file: &Path,
    extra: &mut Vec<Finding>,
) -> bool {
    for look in [idx, idx.saturating_sub(1)] {
        let comment = lines[look].comment.trim_start();
        if comment.starts_with("///") || comment.starts_with("//!") {
            if look == 0 {
                break;
            }
            continue;
        }
        if let Some(cov) = allow_covers(comment, rule) {
            if cov {
                return true;
            }
            extra.push(Finding {
                file: file.to_path_buf(),
                line: look + 1,
                rule,
                message: format!(
                    "gtv-lint: allow({}) without `-- <justification>`; findings stay in force",
                    rule.id()
                ),
            });
            return false;
        }
        if look == 0 {
            break;
        }
    }
    false
}

/// Whether the token ending at `code[..end]` looks like a float literal.
fn float_on_left(code: &str, end: usize) -> bool {
    let tok: String = code[..end]
        .trim_end()
        .chars()
        .rev()
        .take_while(|&c| c.is_ascii_alphanumeric() || c == '.' || c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    looks_like_float(tok.trim_matches('_'))
}

/// Whether the token starting at `code[start..]` looks like a float literal.
fn float_on_right(code: &str, start: usize) -> bool {
    let rest = code[start..].trim_start();
    let rest = rest.strip_prefix('-').unwrap_or(rest);
    let tok: String =
        rest.chars().take_while(|&c| c.is_ascii_alphanumeric() || c == '.' || c == '_').collect();
    looks_like_float(&tok)
}

/// A numeric token with a decimal point, exponent, or f32/f64 suffix.
fn looks_like_float(tok: &str) -> bool {
    if tok.is_empty() || !tok.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    tok.contains('.')
        || tok.ends_with("f32")
        || tok.ends_with("f64")
        || (tok.contains('e') && !tok.contains('x'))
}

/// Positions of `==` / `!=` comparison operators in `code`.
fn eq_operator_positions(code: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < b.len() {
        let two = &b[i..i + 2];
        if two == b"==" {
            let prev = i.checked_sub(1).map(|p| b[p]);
            let next = b.get(i + 2);
            // Exclude <=, >=, !='s tail, ==='s tail, => and pattern guards.
            if !matches!(
                prev,
                Some(b'<')
                    | Some(b'>')
                    | Some(b'!')
                    | Some(b'=')
                    | Some(b'+')
                    | Some(b'-')
                    | Some(b'*')
                    | Some(b'/')
            ) && next != Some(&b'=')
            {
                out.push(i);
            }
            i += 2;
        } else if two == b"!=" && b.get(i + 2) != Some(&b'=') {
            out.push(i);
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// Recursively collects `.rs` files under `dir` (sorted for determinism).
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
}

/// The workspace-relative source files the analyzer scans: every crate's
/// `src/`, the umbrella `src/`, and `examples/` (integration tests and
/// benches are exempt test/bench code).
fn scan_set(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    rust_files(&root.join("src"), &mut files);
    rust_files(&root.join("examples"), &mut files);
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        crates.sort();
        for krate in crates {
            rust_files(&krate.join("src"), &mut files);
        }
    }
    files
}

/// Runs every lint over the workspace at `root`; findings sorted by file
/// then line.
pub fn run_lint(root: &Path) -> Result<Vec<Finding>, LintError> {
    run_lint_timed(root).map(|(findings, _)| findings)
}

/// Lexes and item-parses every file in the scan set rooted at `root`.
pub(crate) fn load_units(root: &Path) -> Result<Vec<FileUnit>, LintError> {
    let mut units = Vec::new();
    for path in scan_set(root) {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let source = std::fs::read_to_string(&path)
            .map_err(|e| LintError { message: format!("cannot read {}: {e}", path.display()) })?;
        let lines = lex(&source);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let ast = parse::parse_file(&lines);
        units.push(FileUnit {
            rel,
            rel_str: rel_str.clone(),
            crate_ident: model::crate_ident(&rel_str),
            lines,
            ast,
        });
    }
    Ok(units)
}

/// Runs one pass, recording its wall-time.
fn timed(
    label: &'static str,
    timings: &mut Vec<PassTiming>,
    findings: &mut Vec<Finding>,
    pass: impl FnOnce(&mut Vec<Finding>),
) {
    // gtv-lint: allow(determinism) -- self-timing of the analyzer, reporting only
    let start = std::time::Instant::now();
    pass(findings);
    timings.push(PassTiming { label, millis: start.elapsed().as_secs_f64() * 1000.0 });
}

/// Runs every lint over the workspace at `root`, returning findings (sorted
/// by file then line) together with per-pass wall-times.
pub fn run_lint_timed(root: &Path) -> Result<(Vec<Finding>, Vec<PassTiming>), LintError> {
    if !root.is_dir() {
        // A typo'd --root must not read as "clean" in CI.
        return Err(LintError { message: format!("root {} is not a directory", root.display()) });
    }
    let mut timings = Vec::new();
    let mut findings = Vec::new();

    // gtv-lint: allow(determinism) -- self-timing of the analyzer, reporting only
    let load_start = std::time::Instant::now();
    let units = load_units(root)?;
    timings
        .push(PassTiming { label: "parse", millis: load_start.elapsed().as_secs_f64() * 1000.0 });

    // The taint engine (def-use chains + memoized interprocedural
    // summaries) is built once, in its own timed slot, and shared by the
    // flow-sensitive passes (L6 sink half, L7, L11, L12).
    let mut engine_slot: Option<dataflow::TaintEngine> = None;
    timed("dataflow", &mut timings, &mut findings, |_| {
        engine_slot = Some(dataflow::TaintEngine::build(&units));
    });
    let engine = engine_slot.expect("dataflow pass always builds the engine");

    timed("L1/panic", &mut timings, &mut findings, |f| {
        for u in &units {
            lint_panic(&u.rel, &u.rel_str, &u.lines, f);
        }
    });
    timed("L2/determinism", &mut timings, &mut findings, |f| {
        for u in &units {
            lint_determinism(&u.rel, &u.rel_str, &u.lines, f);
        }
    });
    timed("L3/float-eq", &mut timings, &mut findings, |f| {
        for u in &units {
            lint_float_eq(&u.rel, &u.rel_str, &u.lines, f);
        }
    });
    timed("L4/wire", &mut timings, &mut findings, |f| {
        for u in &units {
            if u.rel_str == "crates/vfl/src/wire.rs" {
                lint_wire(&u.rel, &u.lines, f);
            }
        }
    });
    timed("L5/allow-justification", &mut timings, &mut findings, |f| {
        for u in &units {
            lint_allow_justification(&u.rel, &u.lines, f);
        }
    });
    timed("L6/privacy-flow", &mut timings, &mut findings, |f| {
        passes::lint_privacy_flow(&units, &engine, f);
    });
    timed("L7/rng-provenance", &mut timings, &mut findings, |f| {
        passes::lint_rng_provenance(&engine, f);
    });
    timed("L8/cast-safety", &mut timings, &mut findings, |f| {
        passes::lint_cast_safety(&units, f);
    });
    timed("L9/layering", &mut timings, &mut findings, |f| {
        passes::lint_layering(&units, f);
    });
    timed("L10/protocol-order", &mut timings, &mut findings, |f| {
        protocol::lint_protocol_order(&units, f);
    });
    timed("L11/raw-egress", &mut timings, &mut findings, |f| {
        dataflow::lint_raw_egress(&engine, f);
    });
    timed("L12/nondet-flow", &mut timings, &mut findings, |f| {
        dataflow::lint_nondet_flow(&engine, f);
    });

    // Deterministic emission order: (file, line, rule, message). Two runs
    // over the same tree must produce byte-identical `--json` output.
    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(&b.rule))
            .then(a.message.cmp(&b.message))
    });
    findings.dedup();
    Ok((findings, timings))
}

/// The variants of `enum Message` in `crates/vfl/src/wire.rs` under `root`,
/// in declaration order. Public so the protocol-machine drift test can tie
/// [`protocol::PROTOCOL_EDGES`] to the real wire format.
pub fn message_variants(root: &Path) -> Result<Vec<String>, LintError> {
    let path = root.join("crates/vfl/src/wire.rs");
    let source = std::fs::read_to_string(&path)
        .map_err(|e| LintError { message: format!("cannot read {}: {e}", path.display()) })?;
    let ast = parse::parse_file(&lex(&source));
    Ok(ast
        .types
        .iter()
        .find(|t| t.is_enum && t.name == "Message")
        .map(|t| t.variants.clone())
        .unwrap_or_default())
}

/// The variants of `enum ServeFrame` in `crates/serve/src/wire.rs` under
/// `root`, in declaration order. Public so the protocol-machine drift test
/// can tie [`protocol::SERVE_EDGES`] to the real serving wire format.
pub fn serve_frame_variants(root: &Path) -> Result<Vec<String>, LintError> {
    let path = root.join("crates/serve/src/wire.rs");
    let source = std::fs::read_to_string(&path)
        .map_err(|e| LintError { message: format!("cannot read {}: {e}", path.display()) })?;
    let ast = parse::parse_file(&lex(&source));
    Ok(ast
        .types
        .iter()
        .find(|t| t.is_enum && t.name == "ServeFrame")
        .map(|t| t.variants.clone())
        .unwrap_or_default())
}

/// L1: deny panicking macros/methods in protocol paths.
fn lint_panic(rel: &Path, rel_str: &str, lines: &[LexedLine], findings: &mut Vec<Finding>) {
    if !L1_FILES.contains(&rel_str) {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in L1_TOKENS {
            let method_like = !token.ends_with('!');
            let present = if method_like {
                // Methods fire only as calls: `.unwrap()` / `.expect(`.
                line.code.contains(&format!(".{token}("))
            } else {
                has_token(&line.code, token)
            };
            if present && !suppressed(lines, idx, Rule::Panic, rel, findings) {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: idx + 1,
                    rule: Rule::Panic,
                    message: format!(
                        "`{token}` in protocol path; return a Result (or `// gtv-lint: allow(panic) -- why`)"
                    ),
                });
            }
        }
    }
}

/// L2: deny ambient randomness and wall-clock reads outside `crates/bench`,
/// ad-hoc thread spawns outside the sanctioned worker pool, and hand-rolled
/// f32 lane code outside the sanctioned SIMD module.
fn lint_determinism(rel: &Path, rel_str: &str, lines: &[LexedLine], findings: &mut Vec<Finding>) {
    if rel_str.starts_with("crates/bench/") {
        return;
    }
    // The pool owns the workspace's data parallelism: its fixed, problem-
    // size-only partitioning is what keeps results thread-count-invariant.
    let is_pool = rel_str == "crates/tensor/src/pool.rs";
    // The tensor kernels are the training hot loop: every buffer must come
    // from the recycling pool (pool_mem), not the allocator, so the
    // step-scoped memory accounting of DESIGN.md §9 stays exact.
    let is_kernels = rel_str == "crates/tensor/src/kernels.rs";
    // Lane-level SIMD lives in exactly one module: its fixed lane-combine
    // order and scalar-equals-lane-0 contract (DESIGN.md §8) are what keep
    // vectorized results bit-identical to the scalar forms. Hand-rolled
    // 8-wide float code anywhere else would fork that contract silently.
    let is_simd = rel_str == "crates/tensor/src/simd.rs";
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if !is_simd {
            for token in ["[f32; 8]", "[f32;8]", "chunks_exact(8)"] {
                if line.code.contains(token)
                    && !suppressed(lines, idx, Rule::Determinism, rel, findings)
                {
                    findings.push(Finding {
                        file: rel.to_path_buf(),
                        line: idx + 1,
                        rule: Rule::Determinism,
                        message: format!(
                            "`{token}` looks like hand-rolled f32 lane code; lane-level SIMD is sanctioned only in `gtv_tensor::simd` (crates/tensor/src/simd.rs) (or `// gtv-lint: allow(determinism) -- why`)"
                        ),
                    });
                }
            }
        }
        if is_kernels {
            for token in ["Vec::with_capacity", "vec![0.0"] {
                if line.code.contains(token)
                    && !suppressed(lines, idx, Rule::Determinism, rel, findings)
                {
                    findings.push(Finding {
                        file: rel.to_path_buf(),
                        line: idx + 1,
                        rule: Rule::Determinism,
                        message: format!(
                            "`{token}` allocates in the kernel hot path; take the buffer from `pool_mem::take`/`take_zeroed` (or `// gtv-lint: allow(determinism) -- why`)"
                        ),
                    });
                }
            }
        }
        for token in L2_TOKENS {
            if has_token(&line.code, token)
                && !suppressed(lines, idx, Rule::Determinism, rel, findings)
            {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: idx + 1,
                    rule: Rule::Determinism,
                    message: format!(
                        "`{token}` breaks seeded reproducibility; derive from a seeded StdRng or move to crates/bench"
                    ),
                });
            }
        }
        if is_pool {
            continue;
        }
        for token in ["thread::spawn", "thread::Builder"] {
            if has_token(&line.code, token)
                && !suppressed(lines, idx, Rule::Determinism, rel, findings)
            {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: idx + 1,
                    rule: Rule::Determinism,
                    message: format!(
                        "ad-hoc `{token}` sidesteps the deterministic worker pool; route parallelism through `gtv_tensor::pool` (crates/tensor/src/pool.rs)"
                    ),
                });
            }
        }
    }
}

/// L3: deny float-literal equality comparisons in metric crates.
fn lint_float_eq(rel: &Path, rel_str: &str, lines: &[LexedLine], findings: &mut Vec<Finding>) {
    if !rel_str.starts_with("crates/metrics/") && !rel_str.starts_with("crates/ml/") {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pos in eq_operator_positions(&line.code) {
            if (float_on_left(&line.code, pos) || float_on_right(&line.code, pos + 2))
                && !suppressed(lines, idx, Rule::FloatEq, rel, findings)
            {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: idx + 1,
                    rule: Rule::FloatEq,
                    message: "exact float comparison; use a tolerance (or `// gtv-lint: allow(float-eq) -- why`)"
                        .to_string(),
                });
            }
        }
    }
}

/// L5: every clippy `allow` must carry a trailing justification comment.
fn lint_allow_justification(rel: &Path, lines: &[LexedLine], findings: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        let is_allow =
            line.code.contains("#[allow(clippy::") || line.code.contains("#![allow(clippy::");
        if is_allow && line.comment.trim_start_matches('/').trim().is_empty() {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: idx + 1,
                rule: Rule::AllowJustification,
                message: "clippy allow without trailing `// <justification>`".to_string(),
            });
        }
    }
}

/// L4: every `Message` variant must appear in both `encode` and `decode`.
fn lint_wire(rel: &Path, lines: &[LexedLine], findings: &mut Vec<Finding>) {
    // Collect variant names from the `enum Message { .. }` body.
    let mut variants: Vec<(String, usize)> = Vec::new();
    let mut i = 0;
    let mut in_enum = false;
    let mut enum_depth = 0i64;
    let mut depth = 0i64;
    while i < lines.len() {
        let code = &lines[i].code;
        if !in_enum && code.contains("enum Message") {
            in_enum = true;
            enum_depth = depth + 1;
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    if in_enum && depth == enum_depth {
                        in_enum = false;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        if in_enum && depth == enum_depth {
            let trimmed = code.trim_start();
            let name: String =
                trimmed.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !name.is_empty()
                && name.chars().next().map(|c| c.is_ascii_uppercase()).unwrap_or(false)
                && trimmed[name.len()..].trim_start().starts_with(['(', '{', ','])
            {
                variants.push((name, i));
            }
        }
        i += 1;
    }
    if variants.is_empty() {
        return;
    }
    // Extract the bodies of `fn encode` and `fn decode` by brace matching.
    let body_of = |needle: &str| -> String {
        let mut out = String::new();
        let mut d = 0i64;
        let mut active = false;
        let mut started = false;
        for line in lines {
            if !active && !started && line.code.contains(needle) {
                active = true;
            }
            if active {
                out.push_str(&line.code);
                out.push('\n');
                for c in line.code.chars() {
                    match c {
                        '{' => {
                            d += 1;
                            started = true;
                        }
                        '}' => d -= 1,
                        _ => {}
                    }
                }
                if started && d == 0 {
                    break;
                }
            }
        }
        out
    };
    // Wire format v2 splits encoding into a `encode` convenience wrapper
    // delegating to a codec-parameterized `encode_with`; the variant match
    // may live in either, so exhaustiveness checks their union.
    let encode_body = format!("{}\n{}", body_of("fn encode("), body_of("fn encode_with("));
    let decode_body = body_of("fn decode(");
    for (variant, idx) in &variants {
        let qualified = format!("Message::{variant}");
        for (body, fn_name) in [(&encode_body, "encode"), (&decode_body, "decode")] {
            if !body.contains(&qualified) && !suppressed(lines, *idx, Rule::Wire, rel, findings) {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: idx + 1,
                    rule: Rule::Wire,
                    message: format!("`Message::{variant}` has no arm in `{fn_name}`"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_strips_strings_and_comments() {
        let lines = lex("let x = \"panic!\"; // panic! in comment\nlet y = 1;");
        assert!(!lines[0].code.contains("panic!"));
        assert!(lines[0].comment.contains("panic!"));
        assert_eq!(lines[1].code, "let y = 1;");
    }

    #[test]
    fn lexer_tracks_cfg_test_blocks() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let lines = lex(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test && lines[2].in_test && lines[3].in_test && lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn lexer_handles_block_comments_and_lifetimes() {
        let lines = lex("/* panic! spans\n lines */ let a: &'static str = \"x\";\nlet c = 'y';");
        assert!(!lines.iter().any(|l| l.code.contains("panic!")));
        assert!(lines[1].code.contains("'static"));
        assert!(!lines[2].code.contains('y'));
    }

    #[test]
    fn token_matching_respects_boundaries() {
        assert!(has_token("thread_rng()", "thread_rng"));
        assert!(!has_token("my_thread_rng()", "thread_rng"));
        assert!(!has_token("thread_rng_pool", "thread_rng"));
        assert!(has_token("panic!(\"x\")", "panic!"));
        assert!(!has_token("dont_panic!(", "panic!"));
    }

    #[test]
    fn float_detection_is_literal_adjacent() {
        let pos = eq_operator_positions("if v == 1.0 {");
        assert_eq!(pos.len(), 1);
        assert!(float_on_right("if v == 1.0 {", pos[0] + 2));
        assert!(float_on_left("if 2.5 == v {", eq_operator_positions("if 2.5 == v {")[0]));
        assert!(!float_on_right("if v == 1 {", 8));
        assert!(eq_operator_positions("a <= b, c >= d, e => f").is_empty());
        assert!(eq_operator_positions("x != 0.5").len() == 1);
    }

    #[test]
    fn doc_comment_allow_does_not_suppress() {
        // An allow quoted in a doc comment is documentation, not a directive.
        let lines = lex(
            "/// gtv-lint: allow(determinism) -- doc text, not a directive\nlet t = thread_rng();\n",
        );
        let mut extra = Vec::new();
        assert!(!suppressed(&lines, 1, Rule::Determinism, Path::new("x.rs"), &mut extra));
        assert!(extra.is_empty(), "doc-comment allows are ignored, not reported as malformed");
        let lines = lex("//! gtv-lint: allow(panic) -- inner doc\nx.unwrap();\n");
        assert!(!suppressed(&lines, 1, Rule::Panic, Path::new("x.rs"), &mut extra));
    }

    #[test]
    fn string_literal_allow_does_not_suppress() {
        // The lexer blanks string contents into `code`; they never become a
        // comment, so an allow inside a string binds nothing.
        let lines =
            lex("let s = \"gtv-lint: allow(determinism) -- nope\";\nlet t = thread_rng();\n");
        let mut extra = Vec::new();
        assert!(!suppressed(&lines, 1, Rule::Determinism, Path::new("x.rs"), &mut extra));
    }

    #[test]
    fn allow_binds_only_to_annotated_line_and_line_below() {
        let src = "// gtv-lint: allow(determinism) -- two lines up\n\nlet t = thread_rng();\n";
        let lines = lex(src);
        let mut extra = Vec::new();
        assert!(
            !suppressed(&lines, 2, Rule::Determinism, Path::new("x.rs"), &mut extra),
            "an allow two lines above must not suppress"
        );
        assert!(suppressed(&lines, 1, Rule::Determinism, Path::new("x.rs"), &mut extra));
        assert!(suppressed(&lines, 0, Rule::Determinism, Path::new("x.rs"), &mut extra));
    }

    #[test]
    fn finding_renders_as_json() {
        let f = Finding {
            file: PathBuf::from("crates/vfl/src/wire.rs"),
            line: 7,
            rule: Rule::CastSafety,
            message: "a \"quoted\" message\\with escapes".to_string(),
        };
        assert_eq!(
            f.to_json(),
            "{\"rule\":\"cast-safety\",\"label\":\"L8/cast-safety\",\"path\":\"crates/vfl/src/wire.rs\",\"line\":7,\"message\":\"a \\\"quoted\\\" message\\\\with escapes\"}"
        );
    }

    #[test]
    fn allow_requires_justification() {
        assert_eq!(
            allow_covers("// gtv-lint: allow(panic) -- negotiated at startup", Rule::Panic),
            Some(true)
        );
        assert_eq!(allow_covers("// gtv-lint: allow(panic)", Rule::Panic), Some(false));
        assert_eq!(allow_covers("// gtv-lint: allow(panic) --   ", Rule::Panic), Some(false));
        assert_eq!(allow_covers("// unrelated", Rule::Panic), None);
        assert_eq!(allow_covers("// gtv-lint: allow(float-eq) -- x", Rule::Panic), None);
    }
}
