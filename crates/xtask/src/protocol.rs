//! L10 `protocol-order`: the declared GTV message choreography and the
//! conformance pass that checks trainer/transport code against it.
//!
//! The per-round protocol (paper §3.1, DESIGN.md §11) is a fixed state
//! machine: the server opens a round (`RoundStart`), clients upload the
//! sampled condition (`CondUpload`, plus the client↔client `IndexShare`
//! when index sharing is peer-to-peer), the server fans out generator
//! slices (`GenSlice`), clients score them (`SynthLogits`), a d-step adds
//! the real-batch pass (`RealLogits` → `GradLogits`) while a g-step closes
//! with `GradGenSlice`, and synthesis publishes `SyntheticShare` rows. The
//! shuffle seed (`ShuffleSeedShare`) only ever travels client↔client —
//! §3.1.5's privacy argument dies if the server sees it.
//!
//! The pass extracts per-function send/recv sequences from the protocol
//! files (`crates/core/src/trainer.rs`, `crates/vfl/src/transport.rs`):
//! `Message::Variant` tokens in body order, expected-kind string arguments
//! on `recv_expect`/`gather`/`fan_in` call lines, and — through the
//! [`RefGraph`] — the sequences of callees defined in protocol files. Each
//! sequence must be a path through [`PROTOCOL_EDGES`] (simulated as an NFA
//! whose start set is *every* state, so mid-round helpers check on their
//! own); every send site whose `PartyId` pair is syntactically visible must
//! match a declared direction; and `enum Message` in any scanned `wire.rs`
//! must stay in bijection with the machine's edge labels (drift check,
//! mirroring L6's registry-drift).
//!
//! The synthesis-serving session (DESIGN.md §14) is a second, disjoint
//! machine over `ServeFrame`: a client handshakes (`SynthHello` →
//! `SynthHelloAck`), then issues requests that resolve to rows, a
//! backpressure rejection, or a typed error. Serve-side protocol files
//! (`crates/serve/src/server.rs`, `crates/serve/src/engine.rs`) are
//! checked against [`SERVE_EDGES`] by the same NFA walk — variant and
//! state names are disjoint from the round machine, so both tables simply
//! union — and `enum ServeFrame` in a scanned `wire.rs` gets its own
//! drift check against the serve table.

use std::collections::{HashMap, HashSet};

use crate::model::RefGraph;
use crate::parse::TokKind;
use crate::passes::file_stem;
use crate::{suppressed, FileUnit, Finding, Rule};

/// Who may send a message along an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Server → one or all clients.
    ServerToClient,
    /// Client → server.
    ClientToServer,
    /// Client → client; the server must never be an endpoint.
    ClientToClient,
    /// Client → the public sink (synthesis output, not a party inbox).
    ClientToPublic,
}

impl Dir {
    /// Human-readable arrow form for findings.
    pub fn arrow(self) -> &'static str {
        match self {
            Dir::ServerToClient => "server→client",
            Dir::ClientToServer => "client→server",
            Dir::ClientToClient => "client→client",
            Dir::ClientToPublic => "client→public",
        }
    }

    /// Whether a concrete `(from, to)` endpoint pair satisfies this
    /// direction. Endpoints are the `PartyId` variant names.
    fn admits(self, from: &str, to: &str) -> bool {
        match self {
            Dir::ServerToClient => from == "Server" && to == "Client",
            Dir::ClientToServer => from == "Client" && to == "Server",
            Dir::ClientToClient => from == "Client" && to == "Client",
            Dir::ClientToPublic => from == "Client" && to == "Public",
        }
    }
}

/// One transition of the protocol machine.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolEdge {
    /// Source state.
    pub from: &'static str,
    /// The `Message` variant that labels the transition.
    pub msg: &'static str,
    /// Who sends it.
    pub dir: Dir,
    /// Destination state.
    pub to: &'static str,
    /// The round phase the transition belongs to (documentation only).
    pub phase: &'static str,
}

/// The states of the per-round machine, `Idle` first.
pub const PROTOCOL_STATES: &[&str] =
    &["Idle", "RoundOpen", "Conditioned", "SlicesSent", "SynthScored", "RealScored"];

/// The declared choreography: every `Message` variant appears exactly once
/// per direction it may travel; trainer/transport sequences must be paths
/// through this table.
pub const PROTOCOL_EDGES: &[ProtocolEdge] = &[
    ProtocolEdge {
        from: "Idle",
        msg: "RoundStart",
        dir: Dir::ServerToClient,
        to: "RoundOpen",
        phase: "select",
    },
    ProtocolEdge {
        from: "RoundOpen",
        msg: "CondUpload",
        dir: Dir::ClientToServer,
        to: "Conditioned",
        phase: "condition",
    },
    ProtocolEdge {
        from: "Conditioned",
        msg: "IndexShare",
        dir: Dir::ClientToClient,
        to: "Conditioned",
        phase: "condition",
    },
    ProtocolEdge {
        from: "Conditioned",
        msg: "GenSlice",
        dir: Dir::ServerToClient,
        to: "SlicesSent",
        phase: "forward",
    },
    ProtocolEdge {
        from: "SlicesSent",
        msg: "SynthLogits",
        dir: Dir::ClientToServer,
        to: "SynthScored",
        phase: "forward",
    },
    ProtocolEdge {
        from: "SynthScored",
        msg: "RealLogits",
        dir: Dir::ClientToServer,
        to: "RealScored",
        phase: "d-step",
    },
    ProtocolEdge {
        from: "RealScored",
        msg: "GradLogits",
        dir: Dir::ServerToClient,
        to: "Idle",
        phase: "d-step",
    },
    ProtocolEdge {
        from: "SynthScored",
        msg: "GradGenSlice",
        dir: Dir::ServerToClient,
        to: "Idle",
        phase: "g-step",
    },
    ProtocolEdge {
        from: "Idle",
        msg: "ShuffleSeedShare",
        dir: Dir::ClientToClient,
        to: "Idle",
        phase: "shuffle",
    },
    ProtocolEdge {
        from: "Idle",
        msg: "SyntheticShare",
        dir: Dir::ClientToPublic,
        to: "Idle",
        phase: "publish",
    },
];

/// The states of the synthesis-serving session machine, `SessIdle` first.
pub const SERVE_STATES: &[&str] = &["SessIdle", "SessHello", "SessReady", "SessPending"];

/// The serving-session choreography over `ServeFrame` (DESIGN.md §14). A
/// reply may also land while the session is already `SessReady` — requests
/// pipeline on one connection, so a busy/error frame can trail the reply
/// that restored readiness — hence the two self-loops.
pub const SERVE_EDGES: &[ProtocolEdge] = &[
    ProtocolEdge {
        from: "SessIdle",
        msg: "SynthHello",
        dir: Dir::ClientToServer,
        to: "SessHello",
        phase: "handshake",
    },
    ProtocolEdge {
        from: "SessHello",
        msg: "SynthHelloAck",
        dir: Dir::ServerToClient,
        to: "SessReady",
        phase: "handshake",
    },
    ProtocolEdge {
        from: "SessHello",
        msg: "SynthErr",
        dir: Dir::ServerToClient,
        to: "SessIdle",
        phase: "handshake",
    },
    ProtocolEdge {
        from: "SessReady",
        msg: "SynthRequest",
        dir: Dir::ClientToServer,
        to: "SessPending",
        phase: "request",
    },
    ProtocolEdge {
        from: "SessPending",
        msg: "SynthRows",
        dir: Dir::ServerToClient,
        to: "SessReady",
        phase: "reply",
    },
    ProtocolEdge {
        from: "SessPending",
        msg: "SynthBusy",
        dir: Dir::ServerToClient,
        to: "SessReady",
        phase: "reply",
    },
    ProtocolEdge {
        from: "SessPending",
        msg: "SynthErr",
        dir: Dir::ServerToClient,
        to: "SessReady",
        phase: "reply",
    },
    ProtocolEdge {
        from: "SessReady",
        msg: "SynthBusy",
        dir: Dir::ServerToClient,
        to: "SessReady",
        phase: "reply",
    },
    ProtocolEdge {
        from: "SessReady",
        msg: "SynthErr",
        dir: Dir::ServerToClient,
        to: "SessReady",
        phase: "reply",
    },
];

/// Every edge of both machines; their variant and state name spaces are
/// disjoint, so one NFA walk over the union checks either kind of file.
fn all_edges() -> impl Iterator<Item = &'static ProtocolEdge> {
    PROTOCOL_EDGES.iter().chain(SERVE_EDGES.iter())
}

/// The enum names whose `Enum::Variant` tokens witness a protocol op.
const PROTOCOL_ENUMS: &[&str] = &["Message", "ServeFrame"];

/// Receive-style calls whose expected-kind argument is a variant-name
/// string literal on the call line (or its continuation line).
const RECV_CALLS: &[&str] = &["recv_expect", "gather", "fan_in"];

/// Interprocedural expansion depth cap; the real trainer nests four deep
/// (`train` → `train_round` → `d_step` → `sample_condition`).
const MAX_DEPTH: usize = 8;

/// Whether a file participates in the protocol (and is both scanned for
/// sequences and eligible for callee expansion).
fn is_protocol_file(unit: &FileUnit) -> bool {
    let stem = file_stem(unit);
    stem.contains("trainer")
        || stem.contains("transport")
        || stem.contains("socket")
        // The serving session's choreography lives in the connection
        // handler and the request engine; the serve `wire.rs` is codec
        // code whose variant order is arbitrary (like the round wire.rs)
        // and is covered by the drift check instead.
        || (unit.rel_str.starts_with("crates/serve/")
            && (stem.contains("server") || stem.contains("engine")))
}

/// One protocol operation extracted from a function body: a `Message`
/// variant observed at a send or recv site.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Op {
    variant: String,
    /// The enum the variant was seen on (`Message` or `ServeFrame`), for
    /// finding text.
    enum_name: &'static str,
    /// Index of the op's file in `units` (ops keep their true origin even
    /// when inlined into a caller's sequence).
    unit: usize,
    line: usize,
}

/// All variant names either machine knows.
fn machine_variants() -> HashSet<&'static str> {
    all_edges().map(|e| e.msg).collect()
}

/// L10: protocol-order conformance over trainer/transport files.
pub(crate) fn lint_protocol_order(units: &[FileUnit], findings: &mut Vec<Finding>) {
    let graph = RefGraph::build(units);
    let unit_index: HashMap<*const FileUnit, usize> =
        units.iter().enumerate().map(|(i, u)| (u as *const FileUnit, i)).collect();
    let known = machine_variants();

    // Memoized per-function sequences; cycle-guarded via the DFS stack.
    let mut memo: HashMap<usize, Vec<Op>> = HashMap::new();
    let mut checked_roots: Vec<usize> = Vec::new();
    for (idx, &(unit, f)) in graph.fns.iter().enumerate() {
        if !is_protocol_file(unit) || f.in_test {
            continue;
        }
        checked_roots.push(idx);
        let mut stack = Vec::new();
        ops_of(&graph, &unit_index, idx, &known, &mut memo, &mut stack);
    }

    for &idx in &checked_roots {
        let ops = collapse(memo.get(&idx).cloned().unwrap_or_default());
        check_sequence(units, &ops, &known, findings);
        check_directions(&graph, idx, findings);
    }

    for (u, unit) in units.iter().enumerate() {
        if file_stem(unit) == "wire" {
            check_wire_drift(units, u, &known, findings);
            check_serve_wire_drift(units, u, findings);
        }
    }
}

/// Extracts the op sequence of function `idx`, expanding callees defined in
/// protocol files (depth- and cycle-bounded). Results are memoized: a
/// function's sequence is context-free.
fn ops_of(
    graph: &RefGraph<'_>,
    unit_index: &HashMap<*const FileUnit, usize>,
    idx: usize,
    known: &HashSet<&'static str>,
    memo: &mut HashMap<usize, Vec<Op>>,
    stack: &mut Vec<usize>,
) -> Vec<Op> {
    if let Some(done) = memo.get(&idx) {
        return done.clone();
    }
    if stack.len() >= MAX_DEPTH || stack.contains(&idx) {
        return Vec::new();
    }
    stack.push(idx);
    let (unit, f) = graph.fns[idx];
    let u = unit_index[&(unit as *const FileUnit)];
    let body = &f.body;
    let mut ops = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        // `Message::Variant` / `ServeFrame::Variant` — a send-site
        // constructor or a recv-side match pattern; both witness the
        // variant at this point of the sequence.
        if let Some(&enum_name) = PROTOCOL_ENUMS.iter().find(|e| **e == t.text) {
            if body.get(i + 1).map(|n| n.text == ":").unwrap_or(false)
                && body.get(i + 2).map(|n| n.text == ":").unwrap_or(false)
            {
                if let Some(v) = body.get(i + 3) {
                    if v.kind == TokKind::Ident
                        && v.text.chars().next().map(|c| c.is_ascii_uppercase()).unwrap_or(false)
                    {
                        ops.push(Op { variant: v.text.clone(), enum_name, unit: u, line: v.line });
                        i += 4;
                        continue;
                    }
                }
            }
        }
        if t.kind == TokKind::Ident && body.get(i + 1).map(|n| n.text == "(").unwrap_or(false) {
            // Expected-kind string argument on a receive-style call (the
            // round machine's transport idiom; serve code names frames
            // directly).
            if RECV_CALLS.contains(&t.text.as_str()) {
                if let Some((line, v)) = expected_kind_on(unit, t.line, known) {
                    ops.push(Op { variant: v, enum_name: "Message", unit: u, line });
                }
            }
            // Descend into workspace callees that live in protocol files.
            if let Some(callee) = graph.resolve_call_at(idx, i) {
                if callee != idx && is_protocol_file(graph.fns[callee].0) {
                    ops.extend(ops_of(graph, unit_index, callee, known, memo, stack));
                }
            }
        }
        i += 1;
    }
    stack.pop();
    memo.insert(idx, ops.clone());
    ops
}

/// The first machine-variant string literal on `line` or the following line
/// (for calls whose expected-kind argument wraps).
fn expected_kind_on(
    unit: &FileUnit,
    line: usize,
    known: &HashSet<&'static str>,
) -> Option<(usize, String)> {
    for l in [line, line + 1] {
        let Some(lexed) = unit.lines.get(l - 1) else {
            continue;
        };
        for s in &lexed.strings {
            if known.contains(s.as_str()) {
                return Some((l, s.clone()));
            }
        }
    }
    None
}

/// Drops consecutive duplicate variants: fan-out loops and recv-side match
/// arms witness the same phase message several times in a row.
fn collapse(ops: Vec<Op>) -> Vec<Op> {
    let mut out: Vec<Op> = Vec::new();
    for op in ops {
        if out.last().map(|p| p.variant == op.variant).unwrap_or(false) {
            continue;
        }
        out.push(op);
    }
    out
}

/// NFA simulation of one function's sequence over the machine. The start
/// set is every state, so a helper covering only the middle of a round
/// checks on its own; an order violation empties the state set.
fn check_sequence(
    units: &[FileUnit],
    ops: &[Op],
    known: &HashSet<&'static str>,
    findings: &mut Vec<Finding>,
) {
    let mut states: HashSet<&str> =
        PROTOCOL_STATES.iter().chain(SERVE_STATES.iter()).copied().collect();
    let mut prev: Option<&Op> = None;
    for op in ops {
        let unit = &units[op.unit];
        if !known.contains(op.variant.as_str()) {
            let table = if op.enum_name == "ServeFrame" { "SERVE_EDGES" } else { "PROTOCOL_EDGES" };
            if !suppressed(&unit.lines, op.line - 1, Rule::ProtocolOrder, &unit.rel, findings) {
                findings.push(Finding {
                    file: unit.rel.clone(),
                    line: op.line,
                    rule: Rule::ProtocolOrder,
                    message: format!(
                        "`{}::{}` does not appear in the declared protocol machine (protocol::{table})",
                        op.enum_name, op.variant
                    ),
                });
            }
            // An undeclared message has no edges; skip it rather than
            // cascade an order finding off the same token.
            continue;
        }
        let next: HashSet<&str> = all_edges()
            .filter(|e| e.msg == op.variant && states.contains(e.from))
            .map(|e| e.to)
            .collect();
        if next.is_empty() {
            let before = prev.map(|p| p.variant.as_str()).unwrap_or("the round boundary");
            if !suppressed(&unit.lines, op.line - 1, Rule::ProtocolOrder, &unit.rel, findings) {
                findings.push(Finding {
                    file: unit.rel.clone(),
                    line: op.line,
                    rule: Rule::ProtocolOrder,
                    message: format!(
                        "`{}` cannot follow `{}` on any path through the protocol machine",
                        op.variant, before
                    ),
                });
            }
            // One order finding per function: later ops would only echo the
            // same desynchronization.
            return;
        }
        states = next;
        prev = Some(op);
    }
}

/// Direction conformance for every send site of function `idx` whose
/// `(from, to)` `PartyId` pair is syntactically visible in the same
/// expression (the `(from, to, Message::V)` tuple shape used by `send`,
/// `send_all`, `route` and friends).
fn check_directions(graph: &RefGraph<'_>, idx: usize, findings: &mut Vec<Finding>) {
    let (unit, f) = graph.fns[idx];
    let body = &f.body;
    for i in 0..body.len() {
        let Some(&enum_name) = PROTOCOL_ENUMS.iter().find(|e| **e == body[i].text) else {
            continue;
        };
        if body.get(i + 1).map(|n| n.text != ":").unwrap_or(true)
            || body.get(i + 2).map(|n| n.text != ":").unwrap_or(true)
        {
            continue;
        }
        let Some(v) = body.get(i + 3) else {
            continue;
        };
        if v.kind != TokKind::Ident
            || !v.text.chars().next().map(|c| c.is_ascii_uppercase()).unwrap_or(false)
        {
            continue;
        }
        let Some((from, to)) = party_pair_before(body, i) else {
            continue; // match patterns and bare constructs carry no endpoints
        };
        let dirs: Vec<Dir> = all_edges().filter(|e| e.msg == v.text).map(|e| e.dir).collect();
        if dirs.is_empty() {
            continue; // undeclared variant: the order check already reports it
        }
        if dirs.iter().any(|d| d.admits(from, to)) {
            continue;
        }
        if !suppressed(&unit.lines, v.line - 1, Rule::ProtocolOrder, &unit.rel, findings) {
            let allowed: Vec<&str> = dirs.iter().map(|d| d.arrow()).collect();
            findings.push(Finding {
                file: unit.rel.clone(),
                line: v.line,
                rule: Rule::ProtocolOrder,
                message: format!(
                    "`{}` must not send `{}::{}` to `{}`; the machine admits only {}",
                    from.to_ascii_lowercase(),
                    enum_name,
                    v.text,
                    to.to_ascii_lowercase(),
                    allowed.join(", ")
                ),
            });
        }
    }
}

/// Walks backwards from the `Message` token at `i` to find the two nearest
/// `PartyId::X` endpoints in the same expression: `(from, to, Message::V)`.
/// Returns `(from, to)`. The scan tracks paren depth, only accepts
/// endpoints at the tuple's own depth, and stops at statement boundaries
/// (`{`, `}`, `;`) or the expression's opening paren, so a match pattern —
/// with no endpoints of its own — never inherits endpoints from an earlier
/// statement.
fn party_pair_before(body: &[crate::parse::Token], i: usize) -> Option<(&str, &str)> {
    let mut depth = 0i64;
    let mut found: Vec<&str> = Vec::new();
    let mut j = i;
    let mut steps = 0;
    while j > 0 && steps < 96 {
        j -= 1;
        steps += 1;
        let t = &body[j];
        match t.text.as_str() {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth < 0 {
                    break; // left the enclosing tuple/call expression
                }
            }
            "{" | "}" | ";" if depth == 0 => break,
            _ if depth == 0 && t.kind == TokKind::Ident => {
                let qualified = j >= 3
                    && body[j - 1].text == ":"
                    && body[j - 2].text == ":"
                    && body[j - 3].text == "PartyId";
                if qualified && matches!(t.text.as_str(), "Server" | "Client" | "Public") {
                    found.push(t.text.as_str());
                    if found.len() == 2 {
                        // Nearest endpoint is `to`, the one before it `from`.
                        return Some((found[1], found[0]));
                    }
                }
            }
            _ => {}
        }
    }
    None
}

/// Drift check tying `enum Message` in a scanned `wire.rs` to the machine:
/// every variant must label an edge, and every edge label must be a real
/// variant (mirrors L6's registry-drift shape).
fn check_wire_drift(
    units: &[FileUnit],
    u: usize,
    known: &HashSet<&'static str>,
    findings: &mut Vec<Finding>,
) {
    let unit = &units[u];
    for ty in &unit.ast.types {
        if !ty.is_enum || ty.name != "Message" {
            continue;
        }
        for variant in &ty.variants {
            if known.contains(variant.as_str()) {
                continue;
            }
            let line = ty
                .fields
                .iter()
                .find(|fd| fd.variant.as_deref() == Some(variant))
                .map(|fd| fd.line)
                .unwrap_or(ty.line);
            if !suppressed(&unit.lines, line - 1, Rule::ProtocolOrder, &unit.rel, findings) {
                findings.push(Finding {
                    file: unit.rel.clone(),
                    line,
                    rule: Rule::ProtocolOrder,
                    message: format!(
                        "`Message::{variant}` has no edge in the protocol machine; declare its phase in protocol::PROTOCOL_EDGES"
                    ),
                });
            }
        }
        let declared: HashSet<&str> = ty.variants.iter().map(|s| s.as_str()).collect();
        for edge in PROTOCOL_EDGES {
            if !declared.contains(edge.msg)
                && !suppressed(&unit.lines, ty.line - 1, Rule::ProtocolOrder, &unit.rel, findings)
            {
                findings.push(Finding {
                    file: unit.rel.clone(),
                    line: ty.line,
                    rule: Rule::ProtocolOrder,
                    message: format!(
                        "protocol machine edge `{}` names no `Message` variant; the machine is stale",
                        edge.msg
                    ),
                });
            }
        }
    }
}

/// Serving-machine drift check tying `enum ServeFrame` in a scanned
/// `wire.rs` to [`SERVE_EDGES`]: every variant must label an edge, and
/// every edge label must be a real variant.
fn check_serve_wire_drift(units: &[FileUnit], u: usize, findings: &mut Vec<Finding>) {
    let serve_known: HashSet<&str> = SERVE_EDGES.iter().map(|e| e.msg).collect();
    let unit = &units[u];
    for ty in &unit.ast.types {
        if !ty.is_enum || ty.name != "ServeFrame" {
            continue;
        }
        for variant in &ty.variants {
            if serve_known.contains(variant.as_str()) {
                continue;
            }
            let line = ty
                .fields
                .iter()
                .find(|fd| fd.variant.as_deref() == Some(variant))
                .map(|fd| fd.line)
                .unwrap_or(ty.line);
            if !suppressed(&unit.lines, line - 1, Rule::ProtocolOrder, &unit.rel, findings) {
                findings.push(Finding {
                    file: unit.rel.clone(),
                    line,
                    rule: Rule::ProtocolOrder,
                    message: format!(
                        "`ServeFrame::{variant}` has no edge in the serving machine; declare its transition in protocol::SERVE_EDGES"
                    ),
                });
            }
        }
        let declared: HashSet<&str> = ty.variants.iter().map(|s| s.as_str()).collect();
        let mut reported: HashSet<&str> = HashSet::new();
        for edge in SERVE_EDGES {
            if !declared.contains(edge.msg)
                && reported.insert(edge.msg)
                && !suppressed(&unit.lines, ty.line - 1, Rule::ProtocolOrder, &unit.rel, findings)
            {
                findings.push(Finding {
                    file: unit.rel.clone(),
                    line: ty.line,
                    rule: Rule::ProtocolOrder,
                    message: format!(
                        "serving machine edge `{}` names no `ServeFrame` variant; the machine is stale",
                        edge.msg
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::crate_ident;
    use crate::{lex, parse};
    use std::path::PathBuf;

    fn unit(rel: &str, src: &str) -> FileUnit {
        let lines = lex(src);
        let ast = parse::parse_file(&lines);
        FileUnit {
            rel: PathBuf::from(rel),
            rel_str: rel.to_string(),
            crate_ident: crate_ident(rel),
            lines,
            ast,
        }
    }

    fn lint(src: &str) -> Vec<Finding> {
        let units = vec![unit("crates/core/src/trainer.rs", src)];
        let mut findings = Vec::new();
        lint_protocol_order(&units, &mut findings);
        findings
    }

    #[test]
    fn machine_states_are_closed_under_edges() {
        for e in PROTOCOL_EDGES {
            assert!(PROTOCOL_STATES.contains(&e.from), "undeclared state {}", e.from);
            assert!(PROTOCOL_STATES.contains(&e.to), "undeclared state {}", e.to);
        }
        for e in SERVE_EDGES {
            assert!(SERVE_STATES.contains(&e.from), "undeclared state {}", e.from);
            assert!(SERVE_STATES.contains(&e.to), "undeclared state {}", e.to);
        }
    }

    #[test]
    fn the_machines_share_no_variant_or_state_names() {
        // The NFA walks the union of both tables; disjoint name spaces are
        // what keep a sequence from silently hopping between machines.
        for e in SERVE_EDGES {
            assert!(
                !PROTOCOL_EDGES.iter().any(|p| p.msg == e.msg),
                "variant `{}` appears in both machines",
                e.msg
            );
        }
        for s in SERVE_STATES {
            assert!(!PROTOCOL_STATES.contains(s), "state `{s}` appears in both machines");
        }
    }

    fn lint_serve(src: &str) -> Vec<Finding> {
        let units = vec![unit("crates/serve/src/server.rs", src)];
        let mut findings = Vec::new();
        lint_protocol_order(&units, &mut findings);
        findings
    }

    #[test]
    fn a_full_serving_session_is_a_path() {
        // Handshake, an error reply, then a request resolving each way —
        // the connection handler's own token order.
        let src = "impl T { fn session(&self) {\n\
            match m { ServeFrame::SynthHello { protocol } => a, _ => b };\n\
            let ack = ServeFrame::SynthHelloAck { protocol: SERVE_PROTOCOL };\n\
            let err = ServeFrame::SynthErr { id: 0, reason };\n\
            match n { ServeFrame::SynthRequest { id, model } => c, _ => d };\n\
            let rows = ServeFrame::SynthRows { id, csv };\n\
            let busy = ServeFrame::SynthBusy { id, depth, retry_after_ticks };\n\
            let err2 = ServeFrame::SynthErr { id, reason };\n\
        } }\n";
        assert!(lint_serve(src).is_empty(), "{:?}", lint_serve(src));
    }

    #[test]
    fn a_request_before_the_handshake_completes_is_flagged() {
        let src = "impl T { fn bad(&self) {\n\
            match m { ServeFrame::SynthHello { protocol } => a, _ => b };\n\
            match n { ServeFrame::SynthRequest { id, model } => c, _ => d };\n\
        } }\n";
        let findings = lint_serve(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`SynthRequest` cannot follow `SynthHello`"));
    }

    #[test]
    fn undeclared_serve_frame_names_the_serve_table() {
        let src = "impl T { fn bad(&self) {\n\
            let x = ServeFrame::SynthCancel { id };\n\
        } }\n";
        let findings = lint_serve(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("`ServeFrame::SynthCancel` does not appear"),
            "{findings:?}"
        );
        assert!(findings[0].message.contains("SERVE_EDGES"), "{findings:?}");
    }

    #[test]
    fn serve_wire_drift_is_checked_both_ways() {
        let src = "pub enum ServeFrame {\n\
            SynthHello { protocol: u32 },\n\
            SynthGoodbye,\n\
        }\n";
        let units = vec![unit("crates/serve/src/wire.rs", src)];
        let mut findings = Vec::new();
        lint_protocol_order(&units, &mut findings);
        assert!(
            findings.iter().any(|f| f.message.contains("`ServeFrame::SynthGoodbye`")),
            "{findings:?}"
        );
        // Five distinct labels (Ack, Err, Request, Rows, Busy) are missing
        // from the enum; multi-edge labels report once.
        assert_eq!(
            findings.iter().filter(|f| f.message.contains("the machine is stale")).count(),
            5,
            "{findings:?}"
        );
    }

    #[test]
    fn a_full_round_is_a_path() {
        let src = "impl T { fn round(&self) {\n\
            let a = (PartyId::Server, PartyId::Client(i), Message::RoundStart { round: 0 });\n\
            let b = (PartyId::Client(p), PartyId::Server, Message::CondUpload { cv });\n\
            let c = (PartyId::Server, PartyId::Client(i), Message::GenSlice(m));\n\
            let d = (PartyId::Client(i), PartyId::Server, Message::SynthLogits(m));\n\
            let e = (PartyId::Client(i), PartyId::Server, Message::RealLogits(m));\n\
            let f = (PartyId::Server, PartyId::Client(i), Message::GradLogits(m));\n\
        } }\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn out_of_order_send_is_flagged_once() {
        let src = "impl T { fn bad(&self) {\n\
            let c = (PartyId::Server, PartyId::Client(i), Message::GenSlice(m));\n\
            let a = (PartyId::Server, PartyId::Client(i), Message::RoundStart { round: 0 });\n\
            let d = (PartyId::Client(i), PartyId::Server, Message::SynthLogits(m));\n\
        } }\n";
        let findings = lint(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("`RoundStart` cannot follow `GenSlice`"));
    }

    #[test]
    fn wrong_direction_is_flagged() {
        let src = "impl T { fn bad(&self) {\n\
            let a = (PartyId::Server, PartyId::Client(0), Message::CondUpload { cv });\n\
        } }\n";
        let findings = lint(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("must not send `Message::CondUpload`"));
        assert!(findings[0].message.contains("client→server"));
    }

    #[test]
    fn recv_expected_kind_strings_enter_the_sequence() {
        let src = "impl T { fn bad(&self) {\n\
            let a = (PartyId::Server, PartyId::Client(i), Message::RoundStart { round: 0 });\n\
            let got = self.net.gather(PartyId::Server, &senders, \"SynthLogits\");\n\
        } }\n";
        let findings = lint(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("`SynthLogits` cannot follow `RoundStart`"));
    }

    #[test]
    fn match_patterns_inherit_no_endpoints() {
        // A recv-side match arm names a variant with no PartyId pair in the
        // same statement; the direction check must skip it.
        let src = "impl T { fn ok(&self) {\n\
            let m = self.net.recv(PartyId::Server);\n\
            match m { Message::CondUpload { cv } => cv, _ => v };\n\
        } }\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn callee_sequences_inline_into_callers() {
        let src = "impl T {\n\
            fn open(&self) { let a = (PartyId::Server, PartyId::Client(i), Message::RoundStart { round: 0 }); }\n\
            fn fan(&self) { let c = (PartyId::Server, PartyId::Client(i), Message::GenSlice(m)); }\n\
            fn round(&self) { self.fan(); self.open(); }\n\
        }\n";
        let findings = lint(src);
        // `fan` then `open` is GenSlice → RoundStart: out of order in the
        // caller even though each helper is clean on its own.
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`RoundStart` cannot follow `GenSlice`"));
    }

    #[test]
    fn undeclared_variant_is_reported_not_cascaded() {
        let src = "impl T { fn bad(&self) {\n\
            let a = (PartyId::Server, PartyId::Client(i), Message::RoundStart { round: 0 });\n\
            let x = (PartyId::Client(i), PartyId::Server, Message::MaskedUpload(m));\n\
            let b = (PartyId::Client(p), PartyId::Server, Message::CondUpload { cv });\n\
        } }\n";
        let findings = lint(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`Message::MaskedUpload` does not appear"));
    }

    #[test]
    fn wire_drift_is_checked_both_ways() {
        let src = "pub enum Message {\n\
            RoundStart { round: u32 },\n\
            Extra(u8),\n\
        }\n";
        let units = vec![unit("crates/vfl/src/wire.rs", src)];
        let mut findings = Vec::new();
        lint_protocol_order(&units, &mut findings);
        assert!(
            findings.iter().any(|f| f.line == 3 && f.message.contains("`Message::Extra`")),
            "{findings:?}"
        );
        // Nine machine edges name variants the enum lacks.
        assert_eq!(
            findings.iter().filter(|f| f.message.contains("the machine is stale")).count(),
            9,
            "{findings:?}"
        );
    }
}
