//! # gtv-cond
//!
//! CTGAN-style conditional vectors (CVs) for GTV.
//!
//! A conditional vector has one bit per category of every categorical column
//! in the *whole federation*; exactly one bit is hot. In GTV each training
//! round the server picks one client `p` (by the feature-ratio vector `P_r`)
//! to construct the batch of CVs: for every row, client `p` samples one of
//! *its* categorical columns uniformly, samples a category from that column's
//! **log-frequency** distribution (CTGAN's training-by-sampling), and picks a
//! real row whose cell matches the sampled category (`idx_p`). Bits belonging
//! to other clients stay zero.
//!
//! [`ClientCondSampler`] implements the per-client construction,
//! [`CondLayout`] tracks the global bit layout across clients, and
//! [`CondBatch`] carries the sampled choices plus matching row indices.
//!
//! # Examples
//!
//! ```
//! use gtv_cond::ClientCondSampler;
//! use gtv_data::Dataset;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let table = Dataset::Loan.generate(300, 0);
//! let sampler = ClientCondSampler::from_table(&table).expect("loan has categorical columns");
//! let mut rng = StdRng::seed_from_u64(1);
//! let batch = sampler.sample_batch(16, &mut rng);
//! assert_eq!(batch.choices.len(), 16);
//! assert_eq!(batch.row_indices.len(), 16);
//! ```

use gtv_data::Table;
use gtv_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// One sampled condition: which of the constructing client's categorical
/// columns, and which category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CondChoice {
    /// Index into the client's categorical-column list (its "slot").
    pub slot: usize,
    /// The original column index in the client's local table.
    pub column: usize,
    /// The sampled category.
    pub category: usize,
}

/// A batch of conditions plus the matching real-row indices (`idx_p`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondBatch {
    /// Per-row sampled conditions.
    pub choices: Vec<CondChoice>,
    /// Per-row index of a real row whose cell matches the condition.
    pub row_indices: Vec<usize>,
}

#[derive(Debug, Clone)]
struct CondColumn {
    /// Column index in the client's local table.
    column: usize,
    /// Bit offset of this column's categories within the client's CV block.
    local_offset: usize,
    n_categories: usize,
    /// Log-frequency sampling distribution over categories (sums to 1).
    log_probs: Vec<f64>,
    /// Row indices per category.
    pools: Vec<Vec<usize>>,
}

/// Per-client conditional-vector sampler.
#[derive(Debug, Clone)]
pub struct ClientCondSampler {
    columns: Vec<CondColumn>,
    width: usize,
}

impl ClientCondSampler {
    /// Builds a sampler from a client's local table, or `None` if the table
    /// has no categorical columns (such a client can never be chosen to
    /// construct the CV).
    pub fn from_table(table: &Table) -> Option<Self> {
        let mut columns = Vec::new();
        let mut offset = 0usize;
        for (ci, meta) in table.schema().columns().iter().enumerate() {
            let Some(k) = meta.kind.n_categories() else { continue };
            let counts = table.category_counts(ci);
            let mut pools: Vec<Vec<usize>> = vec![Vec::new(); k];
            for (r, &v) in table.column(ci).as_cat().iter().enumerate() {
                pools[v as usize].push(r);
            }
            // CTGAN log-frequency: P(cat) ∝ log(1 + count); empty categories
            // can never be sampled (no matching row exists).
            let logs: Vec<f64> = counts.iter().map(|&c| ((1 + c) as f64).ln()).collect();
            let total: f64 =
                logs.iter().zip(&counts).filter(|(_, &c)| c > 0).map(|(l, _)| *l).sum();
            let log_probs = logs
                .iter()
                .zip(&counts)
                .map(|(l, &c)| if c > 0 && total > 0.0 { l / total } else { 0.0 })
                .collect();
            columns.push(CondColumn {
                column: ci,
                local_offset: offset,
                n_categories: k,
                log_probs,
                pools,
            });
            offset += k;
        }
        if columns.is_empty() {
            None
        } else {
            Some(Self { columns, width: offset })
        }
    }

    /// Width of this client's CV block (sum of its category counts).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of categorical columns.
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// Bit offset of `(slot, category)` within this client's CV block.
    pub fn local_bit(&self, slot: usize, category: usize) -> usize {
        let col = &self.columns[slot];
        assert!(category < col.n_categories, "category out of range");
        col.local_offset + category
    }

    /// The local table column index behind a slot.
    pub fn column_of_slot(&self, slot: usize) -> usize {
        self.columns[slot].column
    }

    /// Number of categories in a slot's column — the exclusive upper bound
    /// on the `category` accepted by [`ClientCondSampler::local_bit`].
    /// Callers validating external requests (the synthesis server) check
    /// against this before materializing, keeping the panic inside
    /// `local_bit` unreachable.
    pub fn categories_of_slot(&self, slot: usize) -> usize {
        self.columns[slot].n_categories
    }

    /// Finds the slot backing local table column `column`, if that column is
    /// categorical.
    pub fn slot_of_column(&self, column: usize) -> Option<usize> {
        self.columns.iter().position(|c| c.column == column)
    }

    /// Samples a batch of conditions from the *original* (raw) category
    /// frequencies — the distribution CTGAN uses when *generating* data, as
    /// opposed to the log-frequency distribution used during training.
    pub fn sample_batch_original(&self, batch: usize, rng: &mut StdRng) -> Vec<CondChoice> {
        (0..batch)
            .map(|_| {
                let slot = rng.gen_range(0..self.columns.len());
                let col = &self.columns[slot];
                let freqs: Vec<f64> = col.pools.iter().map(|p| p.len() as f64).collect();
                let category = sample_discrete_unnormalized(&freqs, rng);
                CondChoice { slot, column: col.column, category }
            })
            .collect()
    }

    /// Samples a batch of conditions and matching row indices.
    pub fn sample_batch(&self, batch: usize, rng: &mut StdRng) -> CondBatch {
        let mut choices = Vec::with_capacity(batch);
        let mut row_indices = Vec::with_capacity(batch);
        for _ in 0..batch {
            let slot = rng.gen_range(0..self.columns.len());
            let col = &self.columns[slot];
            let category = sample_discrete(&col.log_probs, rng);
            let pool = &col.pools[category];
            debug_assert!(!pool.is_empty(), "sampled an empty category");
            let row = pool[rng.gen_range(0..pool.len())];
            choices.push(CondChoice { slot, column: col.column, category });
            row_indices.push(row);
        }
        CondBatch { choices, row_indices }
    }

    /// Materializes choices as one-hot rows within a global CV of width
    /// `total_width`, with this client's block starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit in the global width.
    pub fn materialize(&self, choices: &[CondChoice], offset: usize, total_width: usize) -> Tensor {
        assert!(offset + self.width <= total_width, "client CV block does not fit");
        let mut out = Tensor::zeros(choices.len(), total_width);
        for (r, ch) in choices.iter().enumerate() {
            let bit = offset + self.local_bit(ch.slot, ch.category);
            out.set(r, bit, 1.0);
        }
        out
    }
}

fn sample_discrete_unnormalized(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must have positive mass");
    let mut u = rng.gen::<f64>() * total;
    let mut last_nonzero = 0;
    for (i, &w) in weights.iter().enumerate() {
        if w > 0.0 {
            last_nonzero = i;
        }
        u -= w;
        if u <= 0.0 && w > 0.0 {
            return i;
        }
    }
    last_nonzero
}

fn sample_discrete(probs: &[f64], rng: &mut StdRng) -> usize {
    let mut u = rng.gen::<f64>();
    let mut last_nonzero = 0;
    for (i, &p) in probs.iter().enumerate() {
        if p > 0.0 {
            last_nonzero = i;
        }
        u -= p;
        if u <= 0.0 && p > 0.0 {
            return i;
        }
    }
    last_nonzero
}

/// Global CV layout: one contiguous block per client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondLayout {
    offsets: Vec<usize>,
    widths: Vec<usize>,
    total: usize,
}

impl CondLayout {
    /// Builds a layout from per-client block widths (0 for clients without
    /// categorical columns).
    pub fn new(widths: Vec<usize>) -> Self {
        let mut offsets = Vec::with_capacity(widths.len());
        let mut cursor = 0;
        for &w in &widths {
            offsets.push(cursor);
            cursor += w;
        }
        Self { offsets, widths, total: cursor }
    }

    /// Total CV width.
    pub fn total_width(&self) -> usize {
        self.total
    }

    /// Offset of a client's block.
    pub fn offset(&self, client: usize) -> usize {
        self.offsets[client]
    }

    /// Width of a client's block.
    pub fn width(&self, client: usize) -> usize {
        self.widths[client]
    }

    /// Number of clients.
    pub fn n_clients(&self) -> usize {
        self.widths.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_data::{ColumnData, ColumnKind, ColumnMeta, Schema};
    use rand::SeedableRng;

    fn demo_table() -> Table {
        let schema = Schema::new(
            vec![
                ColumnMeta::new("x", ColumnKind::Continuous),
                ColumnMeta::new("g", ColumnKind::categorical(["a", "b"])),
                ColumnMeta::new("h", ColumnKind::categorical(["p", "q", "r"])),
            ],
            None,
        );
        Table::new(
            schema,
            vec![
                ColumnData::Float((0..10).map(|i| i as f64).collect()),
                ColumnData::Cat(vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 1]),
                ColumnData::Cat(vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0]),
            ],
        )
    }

    #[test]
    fn width_is_sum_of_categories() {
        let s = ClientCondSampler::from_table(&demo_table()).unwrap();
        assert_eq!(s.width(), 5);
        assert_eq!(s.n_columns(), 2);
    }

    #[test]
    fn no_categorical_columns_gives_none() {
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnKind::Continuous)], None);
        let t = Table::new(schema, vec![ColumnData::Float(vec![1.0, 2.0])]);
        assert!(ClientCondSampler::from_table(&t).is_none());
    }

    #[test]
    fn sampled_rows_match_condition() {
        let t = demo_table();
        let s = ClientCondSampler::from_table(&t).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let batch = s.sample_batch(200, &mut rng);
        for (ch, &row) in batch.choices.iter().zip(&batch.row_indices) {
            let cell = t.column(ch.column).as_cat()[row] as usize;
            assert_eq!(cell, ch.category, "row {row} does not satisfy its condition");
        }
    }

    #[test]
    fn log_frequency_boosts_minorities() {
        // Column g is 80/20; log-frequency sampling should give the minority
        // class far more than 20% of the conditions on that column.
        let t = demo_table();
        let s = ClientCondSampler::from_table(&t).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let batch = s.sample_batch(4000, &mut rng);
        let g_choices: Vec<&CondChoice> = batch.choices.iter().filter(|c| c.column == 1).collect();
        let minority = g_choices.iter().filter(|c| c.category == 1).count() as f64;
        let frac = minority / g_choices.len() as f64;
        assert!(frac > 0.3, "minority condition fraction {frac} should exceed raw 20%");
    }

    #[test]
    fn materialize_sets_exactly_one_bit() {
        let t = demo_table();
        let s = ClientCondSampler::from_table(&t).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let batch = s.sample_batch(32, &mut rng);
        let layout = CondLayout::new(vec![s.width(), 4]);
        let cv = s.materialize(&batch.choices, layout.offset(0), layout.total_width());
        assert_eq!(cv.shape(), (32, 9));
        for r in 0..32 {
            let row = cv.row_slice(r);
            assert_eq!(row.iter().sum::<f32>(), 1.0);
            // The hot bit lies inside client 0's block.
            let hot = row.iter().position(|&v| v == 1.0).unwrap();
            assert!(hot < 5);
        }
    }

    #[test]
    fn layout_offsets_accumulate() {
        let l = CondLayout::new(vec![3, 0, 4]);
        assert_eq!(l.total_width(), 7);
        assert_eq!(l.offset(0), 0);
        assert_eq!(l.offset(1), 3);
        assert_eq!(l.offset(2), 3);
        assert_eq!(l.width(2), 4);
        assert_eq!(l.n_clients(), 3);
    }

    #[test]
    fn empty_categories_never_sampled() {
        let schema = Schema::new(
            vec![ColumnMeta::new("g", ColumnKind::categorical(["a", "b", "never"]))],
            None,
        );
        let t = Table::new(schema, vec![ColumnData::Cat(vec![0, 1, 0, 1, 0])]);
        let s = ClientCondSampler::from_table(&t).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let batch = s.sample_batch(500, &mut rng);
        assert!(batch.choices.iter().all(|c| c.category != 2));
    }
}
