//! Shared fixture for the serve integration tests: one smoke-trained
//! Loan model, rebuilt into a standalone [`Synthesizer`] through the
//! `save_weights`/`load_weights` state-dict path.
#![allow(dead_code)]

use gtv::{GtvConfig, GtvTrainer, Synthesizer};
use gtv_data::Dataset;

/// Trains one smoke round on a deterministic Loan shard split and
/// extracts the generator as a sample-ready synthesizer.
pub fn trained_synth() -> Synthesizer {
    let table = Dataset::Loan.generate(96, 3);
    let n = table.n_cols();
    let shards = table.vertical_split(&[(0..n / 2).collect(), (n / 2..n).collect()]);
    let mut trainer = GtvTrainer::new(shards, GtvConfig::smoke());
    trainer.train_round().expect("smoke round");
    trainer.synthesizer().expect("synthesizer")
}
