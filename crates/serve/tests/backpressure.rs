//! Backpressure regression tests: flooding the bounded queue past its
//! cap yields typed `Busy` rejections (no hang, no panic), the queue
//! drains once load drops, and tick-denominated deadlines expire with
//! the transport's timeout shape.

mod common;

use gtv::SynthSpec;
use gtv_serve::{ModelRegistry, RowsRequest, ServeConfig, ServeError, SynthService};
use gtv_vfl::TransportError;

fn req(model: &str, seed: u64, deadline_ticks: Option<u64>) -> RowsRequest {
    RowsRequest {
        model: model.to_string(),
        spec: SynthSpec { n: 4, seed, cond: None },
        deadline_ticks,
    }
}

#[test]
fn flooding_past_the_cap_yields_typed_busy_and_the_queue_drains() {
    let mut registry = ModelRegistry::new();
    registry.insert("loan", common::trained_synth());
    let config = ServeConfig {
        queue_cap: 8,
        max_batch_rows: 64,
        retry_after_ticks: 3,
        ..ServeConfig::default()
    };
    let service = SynthService::new(registry, config);

    let mut tickets = Vec::new();
    let mut busy = 0u32;
    for seed in 0..20 {
        match service.submit(&req("loan", seed, None)) {
            Ok(ticket) => tickets.push(ticket),
            Err(ServeError::Busy { depth, retry_after_ticks }) => {
                assert_eq!(depth, 8, "rejection reports the observed depth");
                assert_eq!(retry_after_ticks, 3, "rejection carries the retry hint");
                busy += 1;
            }
            Err(e) => panic!("flood must only produce Busy rejections, got {e}"),
        }
    }
    assert_eq!(tickets.len(), 8, "exactly queue_cap requests are admitted");
    assert_eq!(busy, 12, "everything past the cap is rejected");

    // Load stops: the queue drains completely and every admitted request
    // resolves with rows.
    while service.pump() > 0 {}
    assert_eq!(service.queue_depth(), 0);
    for ticket in tickets {
        let table = service.try_take(ticket).expect("resolved").expect("rows");
        assert_eq!(table.n_rows(), 4);
    }

    // Admission reopens once depth falls below the cap.
    let reopened = service.submit(&req("loan", 99, None)).expect("admission reopens");
    while service.pump() > 0 {}
    assert!(service.try_take(reopened).expect("resolved").is_ok());

    let stats = service.stats();
    assert_eq!(stats.rejected_busy, 12);
    assert_eq!(stats.completed, 9);
}

#[test]
fn deadlines_expire_in_ticks_with_the_transport_timeout_shape() {
    let mut registry = ModelRegistry::new();
    let synth = common::trained_synth();
    // Two names for the same weights: a second model keeps the engine
    // from coalescing the probe into the first group (different model
    // keys never batch together), so it ages in the queue.
    registry.insert("loan", synth);
    registry.insert("loan-b", common::trained_synth());
    let service = SynthService::new(registry, ServeConfig::default());

    // A deadline of zero expires at the first batch boundary.
    let doomed = service.submit(&req("loan", 1, Some(0))).expect("admitted");
    service.pump();
    match service.try_take(doomed).expect("resolved") {
        Err(ServeError::Expired(TransportError::Timeout { round, expecting, .. })) => {
            assert_eq!(round, Some(1), "expiry names the batch tick");
            assert_eq!(expecting, Some("SynthRows"), "expiry names the frame that never came");
        }
        other => panic!("expected Expired(Timeout), got {other:?}"),
    }

    // A deadline of one tick survives the batch that picks it up next,
    // but expires if other-model traffic keeps it queued past a tick.
    let front = service.submit(&req("loan", 2, None)).expect("admitted");
    let aged = service.submit(&req("loan-b", 3, Some(1))).expect("admitted");
    service.pump(); // batches "loan" only; "loan-b" stays queued
    service.pump(); // forms the next group: the probe is now 2 ticks old
    assert!(service.try_take(front).expect("front resolved").is_ok());
    assert!(matches!(
        service.try_take(aged).expect("aged resolved"),
        Err(ServeError::Expired(TransportError::Timeout { .. }))
    ));

    let stats = service.stats();
    assert_eq!(stats.expired, 2);
}
