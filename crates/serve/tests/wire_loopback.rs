//! Socket loopback: the wire surface returns byte-identical rows to the
//! in-process handle, over both TCP and Unix-domain endpoints, and
//! remote failures arrive as typed error frames.

mod common;

use gtv::SynthSpec;
use gtv_serve::{
    ModelRegistry, RowsRequest, ServeConfig, ServeConn, ServeError, SynthServer, SynthService,
};
use gtv_vfl::Endpoint;
use std::sync::Arc;

fn service_with_loan() -> Arc<SynthService> {
    let mut registry = ModelRegistry::new();
    registry.insert("loan", common::trained_synth());
    Arc::new(SynthService::new(registry, ServeConfig::default()))
}

#[test]
fn tcp_round_trip_matches_in_process_bytes() {
    let service = service_with_loan();
    let want = gtv_data::to_csv_string(
        &service
            .request(&RowsRequest {
                model: "loan".to_string(),
                spec: SynthSpec { n: 9, seed: 77, cond: None },
                deadline_ticks: None,
            })
            .expect("in-process request"),
    );

    let server =
        SynthServer::bind(Arc::clone(&service), &Endpoint::parse("127.0.0.1:0")).expect("bind tcp");
    let endpoint = server.endpoint();
    let handle = std::thread::spawn(move || server.serve(Some(2)));

    let mut conn = ServeConn::connect(&endpoint).expect("connect");
    let got = conn.synth("loan", 9, 77, None, None).expect("rows over tcp");
    assert_eq!(String::from_utf8(got).expect("utf8 csv"), want);

    // A remote failure is a typed error frame, not a dropped connection.
    match conn.synth("no-such-model", 1, 0, None, None) {
        Err(ServeError::Remote { reason }) => {
            assert!(reason.contains("unknown model"), "reason: {reason}")
        }
        other => panic!("expected a Remote error, got {other:?}"),
    }

    drop(conn);
    let served = handle.join().expect("server thread").expect("serve loop");
    assert_eq!(served, 2, "one rows frame and one error frame were written");
}

#[test]
fn unix_socket_round_trip_serves_rows() {
    let service = service_with_loan();
    let path = std::env::temp_dir().join(format!("gtv-serve-loopback-{}.sock", std::process::id()));
    let server =
        SynthServer::bind(Arc::clone(&service), &Endpoint::Unix(path.clone())).expect("bind unix");
    let endpoint = server.endpoint();
    let handle = std::thread::spawn(move || server.serve(Some(1)));

    let mut conn = ServeConn::connect(&endpoint).expect("connect");
    let got = conn.synth("loan", 5, 5, None, None).expect("rows over unix socket");
    assert!(!got.is_empty());

    drop(conn);
    let served = handle.join().expect("server thread").expect("serve loop");
    assert_eq!(served, 1);
    assert!(!path.exists(), "the listener removes its socket path on drop");
}
