//! Bit-reproducibility across batching decisions: the same
//! `(model, cond, n, seed)` request returns byte-identical CSV whether it
//! runs solo or coalesced, and under every worker-thread count — the
//! serve-side mirror of `pipeline_equivalence.rs`. Cases are generated
//! proptest-style from a seeded RNG.

mod common;

use gtv::{CondSpec, SynthSpec};
use gtv_data::to_csv_string;
use gtv_serve::{ModelRegistry, RowsRequest, ServeConfig, SynthService};
use gtv_tensor::pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn request_for(spec: SynthSpec) -> RowsRequest {
    RowsRequest { model: "loan".to_string(), spec, deadline_ticks: None }
}

#[test]
fn solo_coalesced_and_thread_counts_agree_bit_for_bit() {
    let mut registry = ModelRegistry::new();
    registry.insert("loan", common::trained_synth());
    let service = SynthService::new(registry, ServeConfig::default());
    let synth = service.registry().get("loan").expect("registered");

    // Drawn cases: varied row counts, seeds, and an occasional fixed
    // condition on the first categorical slot of client 0.
    let mut rng = StdRng::seed_from_u64(0xC0A1E5CE);
    let cond_col = synth.first_categorical();
    let specs: Vec<SynthSpec> = (0..6)
        .map(|_| {
            let cond = match (rng.gen_range(0..3usize), cond_col) {
                (0, Some((client, column))) => Some(CondSpec { client, column, category: 0 }),
                _ => None,
            };
            SynthSpec { n: rng.gen_range(1..24usize), seed: rng.gen(), cond }
        })
        .collect();

    // Reference: every request solo, single-threaded kernels
    // (GTV_THREADS=1 equivalent).
    pool::set_threads(1);
    let reference: Vec<String> =
        specs.iter().map(|s| to_csv_string(&synth.synth_one(s).expect("solo"))).collect();

    for threads in [1usize, 2, 8] {
        pool::set_threads(threads);

        // Solo through the engine at this thread count.
        for (spec, want) in specs.iter().zip(&reference) {
            let got = service.request(&request_for(*spec)).expect("solo request");
            assert_eq!(&to_csv_string(&got), want, "solo, threads={threads}");
        }

        // Coalesced: submit everything, then let one leader batch it.
        let tickets: Vec<u64> =
            specs.iter().map(|s| service.submit(&request_for(*s)).expect("submit")).collect();
        while service.pump() > 0 {}
        for ((ticket, spec), want) in tickets.iter().zip(&specs).zip(&reference) {
            let got =
                service.try_take(*ticket).expect("resolved").expect("coalesced request succeeds");
            assert_eq!(&to_csv_string(&got), want, "coalesced, threads={threads}, spec={spec:?}");
        }
    }
    pool::set_threads(1);

    // The coalesced passes really did batch: at least one group held all
    // six requests (log2 bucket 2 covers sizes 4..=7).
    let stats = service.stats();
    assert!(stats.batch_hist[2] >= 3, "expected 6-request groups: {:?}", stats.batch_hist);
}
