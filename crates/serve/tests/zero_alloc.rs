//! Zero-allocation proof for steady-state serving: once the buffer pool
//! is warm, repeated same-shape requests are served entirely from
//! recycled buffers — `PoolStats.misses` stays at zero across the
//! measurement window.

mod common;

use gtv::SynthSpec;
use gtv_serve::{ModelRegistry, RowsRequest, ServeConfig, SynthService};
use gtv_tensor::pool_mem;

fn req(seed: u64) -> RowsRequest {
    RowsRequest {
        model: "loan".to_string(),
        spec: SynthSpec { n: 16, seed, cond: None },
        deadline_ticks: None,
    }
}

#[test]
fn steady_state_requests_allocate_nothing_fresh() {
    pool_mem::set_enabled(true);
    let mut registry = ModelRegistry::new();
    let parked = registry.insert_warm("loan", common::trained_synth()).expect("warm insert");
    assert!(parked > 0, "insert_warm must pin at least the staging buffer");
    let service = SynthService::new(registry, ServeConfig::default());

    // Warm-up window: the first requests of this shape may still park
    // fresh buffers (the warm pass used the model's own chunk size).
    for seed in 0..4 {
        service.request(&req(seed)).expect("warm-up request");
    }

    pool_mem::reset_stats();
    service.reset_stats();
    for seed in 4..16 {
        service.request(&req(seed)).expect("steady-state request");
    }

    let pool = pool_mem::stats();
    assert_eq!(pool.misses, 0, "steady-state serving must recycle every pooled buffer: {pool:?}");
    assert!(pool.hits > 0, "the steady-state window must actually exercise the pool: {pool:?}");

    // The engine's own counters see the same hit-rate through its
    // per-batch deltas.
    let stats = service.stats();
    assert_eq!(stats.pool_misses, 0, "engine-observed misses: {stats:?}");
    assert!(stats.pool_hit_rate() > 0.999, "hit rate {}", stats.pool_hit_rate());
    assert_eq!(stats.completed, 12);
}
