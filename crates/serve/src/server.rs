//! The serve-session socket surface: [`SynthServer`] and [`ServeConn`].
//!
//! Mirrors the party transport's socket discipline
//! (`gtv_vfl::socket`): a non-blocking listener polled on a fixed tick
//! so the stop flag is honored, accepted streams switched to blocking
//! reads with a short timeout, and every frame carried length-delimited
//! (wire-v2 style) with typed errors for every failure. Connections are
//! served one at a time; *within* a connection requests may be pipelined,
//! and the server drains every decodable request into the engine before
//! pumping, so pipelined clients get their requests coalesced into
//! batched forward passes.
//!
//! No wall clock is read anywhere: waits are counted in poll ticks
//! (`read_timeout`-bounded reads), keeping the serving path under the
//! same determinism lint as the training transport.

use crate::engine::{RowsRequest, ServeError, SynthService};
use crate::wire::{
    encode_serve_wire, ServeFrame, ServeFrameBuf, WireCond, MAX_REASON, SERVE_PROTOCOL,
};
use gtv::{CondSpec, SynthSpec};
use gtv_data::{to_csv_string, Table};
use gtv_vfl::{Endpoint, PartyId, TransportError};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Accept-loop and per-read poll period (stop-flag latency).
const SERVE_POLL: Duration = Duration::from_millis(20);
/// Poll ticks a handshake may take before giving up (≈5 s).
const HANDSHAKE_POLLS: u32 = 250;
/// Poll ticks a client waits for a reply frame (≈60 s).
const REPLY_POLLS: u32 = 3000;
/// Initial-connect attempts (the server may still be starting up).
const CONNECT_ATTEMPTS: u32 = 6;
/// Base of the exponential redial backoff.
const BACKOFF_BASE: Duration = Duration::from_millis(20);

fn frame_err(detail: impl Into<String>) -> TransportError {
    TransportError::Frame { detail: detail.into() }
}

fn setup_failed(what: &str, e: std::io::Error) -> TransportError {
    TransportError::HandshakeFailed { reason: format!("{what}: {e}") }
}

fn backoff(attempt: u32) -> Duration {
    // attempt < CONNECT_ATTEMPTS <= 31, so the shift cannot overflow.
    BACKOFF_BASE * (1u32 << attempt.min(10))
}

/// Lossless on every supported target; counters saturate rather than trap.
fn as_u64(v: usize) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// One accepted or dialed byte stream.
#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(on),
            Stream::Unix(s) => s.set_nonblocking(on),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    Unix { listener: UnixListener, path: PathBuf },
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix { path, .. } = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// What one bounded read produced.
enum ReadOutcome {
    /// Fresh bytes were appended to the frame buffer.
    Data,
    /// The poll tick elapsed with nothing to read.
    Idle,
    /// The peer closed the stream.
    Disconnected,
}

/// One bounded read into `fb`; `WouldBlock`/`TimedOut` are a quiet tick,
/// EOF is a disconnect, everything else drops the peer.
fn read_chunk(
    stream: &mut Stream,
    fb: &mut ServeFrameBuf,
    peer: PartyId,
) -> Result<ReadOutcome, TransportError> {
    let mut buf = [0u8; 65536];
    match stream.read(&mut buf) {
        Ok(0) => Ok(ReadOutcome::Disconnected),
        Ok(n) => {
            fb.extend(&buf[..n]);
            Ok(ReadOutcome::Data)
        }
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
            Ok(ReadOutcome::Idle)
        }
        Err(e) if e.kind() == ErrorKind::Interrupted => Ok(ReadOutcome::Idle),
        Err(_) => Err(TransportError::PeerDisconnected { party: peer }),
    }
}

/// Blocks until a complete frame arrives, bounded by `polls` read ticks.
fn wait_frame(
    stream: &mut Stream,
    fb: &mut ServeFrameBuf,
    polls: u32,
    peer: PartyId,
) -> Result<ServeFrame, TransportError> {
    for _ in 0..polls {
        if let Some(frame) = fb.next_frame()? {
            return Ok(frame);
        }
        if let ReadOutcome::Disconnected = read_chunk(stream, fb, peer)? {
            return Err(TransportError::PeerDisconnected { party: peer });
        }
    }
    Err(TransportError::Timeout {
        party: peer,
        waited: SERVE_POLL * polls,
        round: None,
        expecting: None,
    })
}

/// Writes one length-prefixed frame.
fn write_serve(
    stream: &mut Stream,
    frame: &ServeFrame,
    peer: PartyId,
) -> Result<(), TransportError> {
    let bytes = encode_serve_wire(frame)?;
    stream
        .write_all(&bytes)
        .and_then(|()| stream.flush())
        .map_err(|_| TransportError::PeerDisconnected { party: peer })
}

/// Clips an error reason to the wire bound on a char boundary.
fn clip_reason(mut reason: String) -> String {
    let mut cap = MAX_REASON.min(reason.len());
    while !reason.is_char_boundary(cap) {
        cap -= 1;
    }
    reason.truncate(cap);
    reason
}

/// The response frame for one resolved request. Busy keeps its typed
/// shape on the wire so clients can apply the retry hint; every other
/// failure is carried as its display string.
fn reply_for(id: u64, outcome: Result<Table, ServeError>) -> ServeFrame {
    match outcome {
        Ok(table) => ServeFrame::SynthRows { id, csv: to_csv_string(&table).into_bytes() },
        Err(ServeError::Busy { depth, retry_after_ticks }) => {
            ServeFrame::SynthBusy { id, depth: as_u64(depth), retry_after_ticks }
        }
        Err(e) => ServeFrame::SynthErr { id, reason: clip_reason(e.to_string()) },
    }
}

/// Long-lived synthesis server: owns the listening socket and drives a
/// shared [`SynthService`].
#[derive(Debug)]
pub struct SynthServer {
    service: Arc<SynthService>,
    listener: Listener,
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
}

impl SynthServer {
    /// Binds the listening socket (TCP port 0 picks a free port; a stale
    /// Unix socket path is replaced).
    pub fn bind(service: Arc<SynthService>, endpoint: &Endpoint) -> Result<Self, TransportError> {
        let (listener, resolved) = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr).map_err(|e| setup_failed("bind", e))?;
                l.set_nonblocking(true).map_err(|e| setup_failed("listener", e))?;
                let local = l.local_addr().map_err(|e| setup_failed("local_addr", e))?;
                (Listener::Tcp(l), Endpoint::Tcp(local.to_string()))
            }
            Endpoint::Unix(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                let l = UnixListener::bind(path).map_err(|e| setup_failed("bind", e))?;
                l.set_nonblocking(true).map_err(|e| setup_failed("listener", e))?;
                (Listener::Unix { listener: l, path: path.clone() }, Endpoint::Unix(path.clone()))
            }
        };
        Ok(Self { service, listener, endpoint: resolved, stop: Arc::new(AtomicBool::new(false)) })
    }

    /// The resolved listening endpoint (with any ephemeral port filled in).
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }

    /// The engine this server answers from.
    pub fn service(&self) -> &Arc<SynthService> {
        &self.service
    }

    /// A handle that makes [`serve`](Self::serve) return.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Asks the accept loop to wind down at its next poll tick.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Accepts and serves connections (one at a time) until the stop flag
    /// is raised or `max_replies` responses have been written. Returns
    /// the number of responses written. Only listener-level failures are
    /// fatal; anything a client does wrong drops that client.
    pub fn serve(&self, max_replies: Option<u64>) -> Result<u64, TransportError> {
        let mut total = 0u64;
        while !self.stopped() {
            let remaining = match max_replies {
                Some(m) if total >= m => break,
                Some(m) => Some(m - total),
                None => None,
            };
            match self.accept()? {
                Some(stream) => total += self.serve_conn(stream, remaining).unwrap_or(0),
                None => std::thread::sleep(SERVE_POLL),
            }
        }
        Ok(total)
    }

    fn accept(&self) -> Result<Option<Stream>, TransportError> {
        let accepted = match &self.listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix { listener, .. } => listener.accept().map(|(s, _)| Stream::Unix(s)),
        };
        match accepted {
            Ok(stream) => {
                // The listener is non-blocking (to poll the stop flag); the
                // accepted stream blocks with a short read timeout instead.
                stream.set_nonblocking(false).map_err(|e| setup_failed("accepted stream", e))?;
                stream
                    .set_read_timeout(Some(SERVE_POLL))
                    .map_err(|e| setup_failed("accepted stream", e))?;
                Ok(Some(stream))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(setup_failed("accept", e)),
        }
    }

    /// Answers the opening `SynthHello`. The `(reply, accepted)` pair is
    /// built in one match so the session machine sees the accept path
    /// before the reject path.
    fn handshake(&self, stream: &mut Stream, fb: &mut ServeFrameBuf) -> Result<(), TransportError> {
        let frame = wait_frame(stream, fb, HANDSHAKE_POLLS, PartyId::Public)?;
        let (reply, accepted) = match frame {
            ServeFrame::SynthHello { protocol } => {
                if protocol == SERVE_PROTOCOL {
                    (ServeFrame::SynthHelloAck { protocol: SERVE_PROTOCOL }, true)
                } else {
                    let reason = format!(
                        "serve protocol {protocol} not supported (this server speaks {SERVE_PROTOCOL})"
                    );
                    (ServeFrame::SynthErr { id: 0, reason }, false)
                }
            }
            other => {
                let reason = format!("expected SynthHello, got {}", other.kind());
                (ServeFrame::SynthErr { id: 0, reason }, false)
            }
        };
        write_serve(stream, &reply, PartyId::Public)?;
        if accepted {
            Ok(())
        } else {
            Err(TransportError::HandshakeFailed { reason: "serve hello rejected".to_string() })
        }
    }

    /// Decodes one pipelined request and admits it into the engine,
    /// returning `(wire id, admission outcome)`.
    fn admit(&self, frame: ServeFrame) -> Result<(u64, Result<u64, ServeError>), TransportError> {
        match frame {
            ServeFrame::SynthRequest { id, model, n, seed, cond, deadline_ticks } => {
                let spec = SynthSpec {
                    n: usize::try_from(n).unwrap_or(usize::MAX),
                    seed,
                    cond: cond.map(|c| CondSpec {
                        client: usize::try_from(c.client).unwrap_or(usize::MAX),
                        column: usize::try_from(c.column).unwrap_or(usize::MAX),
                        category: usize::try_from(c.category).unwrap_or(usize::MAX),
                    }),
                };
                let req = RowsRequest {
                    model,
                    spec,
                    deadline_ticks: (deadline_ticks != u64::MAX).then_some(deadline_ticks),
                };
                Ok((id, self.service.submit(&req)))
            }
            other => Err(frame_err(format!("expected SynthRequest, got {}", other.kind()))),
        }
    }

    /// Writes a response for every head-of-line request whose result is
    /// ready, preserving request order. Returns how many were written.
    fn flush_ready(
        &self,
        stream: &mut Stream,
        inflight: &mut VecDeque<(u64, Result<u64, ServeError>)>,
    ) -> Result<u64, TransportError> {
        let mut wrote = 0u64;
        while let Some((id, admitted)) = inflight.front() {
            let outcome = match admitted {
                Ok(ticket) => match self.service.try_take(*ticket) {
                    Some(result) => result,
                    None => break,
                },
                Err(e) => Err(e.clone()),
            };
            let id = *id;
            inflight.pop_front();
            let reply = reply_for(id, outcome);
            write_serve(stream, &reply, PartyId::Public)?;
            wrote += 1;
        }
        Ok(wrote)
    }

    /// Serves one connection until EOF, a malformed frame, or the stop
    /// flag. Every decodable request is admitted before the engine is
    /// pumped, so pipelined requests coalesce into one batched forward.
    fn serve_conn(
        &self,
        mut stream: Stream,
        max_replies: Option<u64>,
    ) -> Result<u64, TransportError> {
        let mut fb = ServeFrameBuf::new();
        self.handshake(&mut stream, &mut fb)?;
        let mut inflight: VecDeque<(u64, Result<u64, ServeError>)> = VecDeque::new();
        let mut wrote = 0u64;
        loop {
            if self.stopped() {
                return Ok(wrote);
            }
            let disconnected = matches!(
                read_chunk(&mut stream, &mut fb, PartyId::Public)?,
                ReadOutcome::Disconnected
            );
            while let Some(frame) = fb.next_frame()? {
                let (id, admitted) = self.admit(frame)?;
                inflight.push_back((id, admitted));
            }
            if inflight.iter().any(|(_, admitted)| admitted.is_ok()) {
                self.service.pump();
            }
            wrote += self.flush_ready(&mut stream, &mut inflight)?;
            if let Some(m) = max_replies {
                if wrote >= m {
                    return Ok(wrote);
                }
            }
            if disconnected && inflight.is_empty() {
                return Ok(wrote);
            }
        }
    }
}

/// A connected synthesis client over TCP or a Unix socket.
///
/// For in-process use (benches, tests) prefer calling
/// [`SynthService::request`] directly — it is the same engine without the
/// wire hop.
#[derive(Debug)]
pub struct ServeConn {
    stream: Stream,
    fb: ServeFrameBuf,
    next_id: u64,
}

impl ServeConn {
    /// Dials `endpoint` (with startup backoff) and performs the serve
    /// hello exchange.
    pub fn connect(endpoint: &Endpoint) -> Result<Self, TransportError> {
        let mut stream = dial(endpoint)?;
        let mut fb = ServeFrameBuf::new();
        write_serve(
            &mut stream,
            &ServeFrame::SynthHello { protocol: SERVE_PROTOCOL },
            PartyId::Server,
        )?;
        let reply = wait_frame(&mut stream, &mut fb, HANDSHAKE_POLLS, PartyId::Server)?;
        match reply {
            ServeFrame::SynthHelloAck { .. } => Ok(Self { stream, fb, next_id: 1 }),
            ServeFrame::SynthErr { reason, .. } => Err(TransportError::HandshakeFailed { reason }),
            other => Err(frame_err(format!("expected SynthHelloAck, got {}", other.kind()))),
        }
    }

    /// Requests `n` rows of `model` and blocks for the response.
    /// `deadline_ticks: None` leaves the deadline to the server default.
    pub fn synth(
        &mut self,
        model: &str,
        n: u64,
        seed: u64,
        cond: Option<WireCond>,
        deadline_ticks: Option<u64>,
    ) -> Result<Vec<u8>, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = ServeFrame::SynthRequest {
            id,
            model: model.to_string(),
            n,
            seed,
            cond,
            deadline_ticks: deadline_ticks.unwrap_or(u64::MAX),
        };
        write_serve(&mut self.stream, &request, PartyId::Server)?;
        let reply = wait_frame(&mut self.stream, &mut self.fb, REPLY_POLLS, PartyId::Server)?;
        match reply {
            ServeFrame::SynthRows { id: rid, csv } if rid == id => Ok(csv),
            ServeFrame::SynthBusy { id: rid, depth, retry_after_ticks } if rid == id => {
                Err(ServeError::Busy {
                    depth: usize::try_from(depth).unwrap_or(usize::MAX),
                    retry_after_ticks,
                })
            }
            ServeFrame::SynthErr { id: rid, reason } if rid == id => {
                Err(ServeError::Remote { reason })
            }
            other => Err(ServeError::Transport(frame_err(format!(
                "reply {} does not answer request {id}",
                other.kind()
            )))),
        }
    }
}

/// Dials with startup backoff, mirroring the party transport.
fn dial(endpoint: &Endpoint) -> Result<Stream, TransportError> {
    let mut last: Option<std::io::Error> = None;
    for attempt in 0..CONNECT_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(backoff(attempt));
        }
        let conn = match endpoint {
            Endpoint::Tcp(addr) => TcpStream::connect(addr).map(Stream::Tcp),
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
        };
        match conn {
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(SERVE_POLL))
                    .map_err(|e| setup_failed("dialed stream", e))?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    let detail = last.map_or_else(|| "no attempt made".to_string(), |e| e.to_string());
    Err(TransportError::HandshakeFailed { reason: format!("could not reach {endpoint}: {detail}") })
}
