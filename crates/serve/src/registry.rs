//! The model registry: named, cached, pool-warmed generator instances.
//!
//! A [`ModelRegistry`] maps registry names to ready-to-sample
//! [`gtv::Synthesizer`]s — generators rebuilt once from a trained
//! `StateDict` (the `save_weights`/`load_weights` path) and then reused
//! for every request, so serving never pays weight-loading or graph
//! construction per call.
//!
//! Registration can *warm* the step-scoped buffer pool for a model:
//! [`insert_warm`](ModelRegistry::insert_warm) pins staging buffers sized
//! for a full coalesced chunk via `pool_mem::reserve` and then runs one
//! throwaway forward pass so every layer-intermediate buffer the model
//! will ever need is parked in the pool. Steady-state requests after a
//! warm insert allocate nothing fresh (asserted by the zero-allocation
//! serve test). The pool is thread-local, so warming must happen on the
//! thread that will lead batches — with leader-combining that is any
//! caller thread, each of which warms itself after its first batch.

use gtv::{SynthError, SynthSpec, Synthesizer};
use gtv_tensor::pool_mem;
use std::collections::BTreeMap;

/// Named collection of cached, sample-ready synthesizers.
///
/// Iteration order (and thus `names()`) is the lexicographic order of the
/// registry names: deterministic, independent of insertion history.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, Synthesizer>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `synth` under `name`, replacing any previous holder.
    pub fn insert(&mut self, name: impl Into<String>, synth: Synthesizer) {
        self.models.insert(name.into(), synth);
    }

    /// Registers `synth` under `name` and warms the current thread's
    /// buffer pool for it: pins a staging buffer sized for one full
    /// coalesced chunk, then runs a small throwaway forward so the
    /// layer-intermediate buffers are parked too. Returns the number of
    /// buffers pinned by the reservation.
    pub fn insert_warm(
        &mut self,
        name: impl Into<String>,
        synth: Synthesizer,
    ) -> Result<usize, SynthError> {
        let chunk = synth.chunk_rows();
        let parked = pool_mem::reserve(chunk * synth.input_width(), 2);
        let spec = SynthSpec { n: chunk.clamp(1, 64), seed: 0, cond: None };
        synth.synth_one(&spec)?;
        self.models.insert(name.into(), synth);
        Ok(parked)
    }

    /// The synthesizer registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Synthesizer> {
        self.models.get(name)
    }

    /// Mutable access (e.g. to retune a model's chunk size).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Synthesizer> {
        self.models.get_mut(name)
    }

    /// Registered names, lexicographically sorted.
    pub fn names(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry holds no models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}
