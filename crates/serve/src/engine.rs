//! The request engine: bounded admission, coalescing, leader-combining.
//!
//! [`SynthService`] is the in-process heart of synthesis serving. Callers
//! submit [`RowsRequest`]s into a bounded queue; whichever caller thread
//! arrives while no batch is in flight becomes the *leader*, pops a
//! coalescible prefix of the queue (same model, up to
//! [`ServeConfig::max_batch_rows`] rows), runs it as ONE batched forward
//! pass through [`gtv::Synthesizer::synth_batch`], publishes every
//! result, and wakes the waiters. There is no dedicated worker thread:
//! concurrency comes from the callers themselves, parallelism inside a
//! batch from the deterministic worker pool.
//!
//! Grouping decisions are **unobservable in the output**: every request's
//! rows are a pure function of `(model, cond, n, seed)` thanks to the
//! per-row noise substreams and per-row kernel dispatch (DESIGN.md §14),
//! so the engine can coalesce aggressively without a bit of drift.
//!
//! Time never enters policy. The engine's clock is its *tick* — the batch
//! sequence number — so scheduling is deterministic under the L2 lint:
//! deadlines are "expire unless picked up within `deadline_ticks`
//! batches", and `retry_after` hints are denominated in ticks too.

use crate::registry::ModelRegistry;
use gtv::{SynthError, SynthSpec};
use gtv_data::Table;
use gtv_tensor::pool_mem;
use gtv_vfl::{PartyId, TransportError};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Number of log2 buckets in the batch-size histogram: bucket `i` counts
/// groups of `2^i ..= 2^(i+1)-1` coalesced requests (last bucket open).
pub const HIST_BUCKETS: usize = 12;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission bound: requests beyond this queue depth are rejected
    /// with [`ServeError::Busy`] instead of waiting.
    pub queue_cap: usize,
    /// Coalescing bound: a batch stops growing once it holds this many
    /// rows (a single larger request still runs alone).
    pub max_batch_rows: usize,
    /// Deadline, in ticks, applied when a request does not carry one.
    pub default_deadline_ticks: u64,
    /// Retry hint attached to [`ServeError::Busy`] rejections.
    pub retry_after_ticks: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_cap: 256,
            max_batch_rows: 4096,
            default_deadline_ticks: 1 << 20,
            retry_after_ticks: 1,
        }
    }
}

/// One sampling request as submitted to the engine.
#[derive(Debug, Clone)]
pub struct RowsRequest {
    /// Registry name of the model to sample.
    pub model: String,
    /// What to sample: row count, seed, optional condition.
    pub spec: SynthSpec,
    /// Deadline in ticks; `None` uses
    /// [`ServeConfig::default_deadline_ticks`]. A request expires when
    /// more than this many batches form before it is picked up.
    pub deadline_ticks: Option<u64>,
}

/// Typed serving failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded queue is full; retry after the hinted tick count.
    Busy {
        /// Queue depth observed at rejection.
        depth: usize,
        /// How many ticks to wait before retrying.
        retry_after_ticks: u64,
    },
    /// The request's deadline passed before a batch picked it up. Carries
    /// the transport's timeout shape: `waited` holds the tick count (one
    /// millisecond stands for one tick), `round` the expiring batch
    /// sequence number, `expecting` the response frame that will never
    /// come.
    Expired(TransportError),
    /// The request named a model the registry does not hold.
    UnknownModel {
        /// The unmatched registry name.
        model: String,
    },
    /// The request failed the model's validation or its forward pass.
    Invalid(SynthError),
    /// A transport-layer failure (socket clients only).
    Transport(TransportError),
    /// A remote server answered with an error frame (socket clients only).
    Remote {
        /// The server's reason string.
        reason: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Busy { depth, retry_after_ticks } => {
                write!(f, "queue full at depth {depth}; retry after {retry_after_ticks} tick(s)")
            }
            ServeError::Expired(e) => write!(f, "request deadline expired: {e}"),
            ServeError::UnknownModel { model } => write!(f, "unknown model {model:?}"),
            ServeError::Invalid(e) => write!(f, "invalid request: {e}"),
            ServeError::Transport(e) => write!(f, "transport failure: {e}"),
            ServeError::Remote { reason } => write!(f, "server error: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SynthError> for ServeError {
    fn from(e: SynthError) -> Self {
        ServeError::Invalid(e)
    }
}

impl From<TransportError> for ServeError {
    fn from(e: TransportError) -> Self {
        ServeError::Transport(e)
    }
}

/// Serving counters, all monotone within one stats window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests answered with rows.
    pub completed: u64,
    /// Requests rejected at admission (queue full).
    pub rejected_busy: u64,
    /// Requests rejected at validation (bad model/spec).
    pub rejected_invalid: u64,
    /// Requests dropped because their deadline passed in the queue.
    pub expired: u64,
    /// Coalesced batches run.
    pub groups: u64,
    /// Requests served across all batches.
    pub coalesced_requests: u64,
    /// Rows synthesized across all batches.
    pub coalesced_rows: u64,
    /// Batch-size histogram: bucket `i` counts groups of about `2^i`
    /// requests (see [`HIST_BUCKETS`]).
    pub batch_hist: [u64; HIST_BUCKETS],
    /// Buffer-pool hits observed inside batched forwards.
    pub pool_hits: u64,
    /// Buffer-pool misses observed inside batched forwards.
    pub pool_misses: u64,
}

impl ServeStats {
    /// Pool hit fraction over the window, 1.0 when no requests were seen.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            return 1.0;
        }
        self.pool_hits as f64 / total as f64
    }

    /// Mean coalesced requests per batch, 0.0 before the first batch.
    pub fn mean_batch(&self) -> f64 {
        if self.groups == 0 {
            return 0.0;
        }
        self.coalesced_requests as f64 / self.groups as f64
    }
}

/// A queued request awaiting a batch.
#[derive(Debug)]
struct Pending {
    ticket: u64,
    model: String,
    spec: SynthSpec,
    admit_tick: u64,
    deadline_ticks: u64,
}

#[derive(Debug, Default)]
struct EngineState {
    queue: VecDeque<Pending>,
    results: BTreeMap<u64, Result<Table, ServeError>>,
    next_ticket: u64,
    tick: u64,
    leading: bool,
    stats: ServeStats,
}

/// The batching synthesis engine; see the module docs for the protocol.
///
/// Shared across threads behind an `Arc`; [`request`](Self::request) is
/// the blocking in-process client handle used by tests, benches and the
/// socket server alike.
#[derive(Debug)]
pub struct SynthService {
    registry: ModelRegistry,
    config: ServeConfig,
    state: Mutex<EngineState>,
    done: Condvar,
}

impl SynthService {
    /// Wraps a loaded registry with the given tuning.
    pub fn new(registry: ModelRegistry, config: ServeConfig) -> Self {
        Self { registry, config, state: Mutex::new(EngineState::default()), done: Condvar::new() }
    }

    /// The model registry this service answers from.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The engine tuning in effect.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// A poisoned lock is recovered, matching parking_lot semantics: the
    /// engine state is counters and queues, valid at every step.
    fn locked(&self) -> MutexGuard<'_, EngineState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Validates and admits one request, returning its ticket.
    ///
    /// Rejection is immediate and typed: [`ServeError::UnknownModel`] /
    /// [`ServeError::Invalid`] for bad requests, [`ServeError::Busy`]
    /// once the queue holds [`ServeConfig::queue_cap`] entries.
    pub fn submit(&self, req: &RowsRequest) -> Result<u64, ServeError> {
        let synth = self
            .registry
            .get(&req.model)
            .ok_or_else(|| ServeError::UnknownModel { model: req.model.clone() })?;
        if let Err(e) = synth.validate(&req.spec) {
            let mut st = self.locked();
            st.stats.rejected_invalid += 1;
            return Err(ServeError::Invalid(e));
        }
        let mut st = self.locked();
        if st.queue.len() >= self.config.queue_cap {
            st.stats.rejected_busy += 1;
            return Err(ServeError::Busy {
                depth: st.queue.len(),
                retry_after_ticks: self.config.retry_after_ticks,
            });
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.stats.submitted += 1;
        let deadline_ticks = req.deadline_ticks.unwrap_or(self.config.default_deadline_ticks);
        let admit_tick = st.tick;
        st.queue.push_back(Pending {
            ticket,
            model: req.model.clone(),
            spec: req.spec,
            admit_tick,
            deadline_ticks,
        });
        Ok(ticket)
    }

    /// Removes and returns the result for `ticket`, if resolved.
    pub fn try_take(&self, ticket: u64) -> Option<Result<Table, ServeError>> {
        self.locked().results.remove(&ticket)
    }

    /// Requests currently queued (admitted, not yet batched).
    pub fn queue_depth(&self) -> usize {
        self.locked().queue.len()
    }

    /// The current tick (count of batches formed so far).
    pub fn tick(&self) -> u64 {
        self.locked().tick
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        self.locked().stats.clone()
    }

    /// Zeroes the serving counters (steady-state measurement windows).
    pub fn reset_stats(&self) {
        self.locked().stats = ServeStats::default();
    }

    /// Runs at most one coalesced batch as leader; returns how many
    /// requests it resolved (including expiries). Returns 0 when another
    /// thread is already leading or the queue is empty.
    pub fn pump(&self) -> usize {
        let mut st = self.locked();
        if st.leading || st.queue.is_empty() {
            return 0;
        }
        st.leading = true;
        st.tick += 1;
        let tick = st.tick;
        let mut group: Vec<Pending> = Vec::new();
        let mut group_rows = 0usize;
        let mut resolved = 0usize;
        while let Some(front) = st.queue.front() {
            if tick > front.admit_tick.saturating_add(front.deadline_ticks) {
                let waited = tick - front.admit_tick;
                if let Some(p) = st.queue.pop_front() {
                    st.results.insert(p.ticket, Err(expired(waited, tick)));
                    st.stats.expired += 1;
                    resolved += 1;
                }
                continue;
            }
            if let Some(first) = group.first() {
                let same_model = front.model == first.model;
                if !same_model || group_rows + front.spec.n > self.config.max_batch_rows {
                    break;
                }
            }
            group_rows += front.spec.n;
            if let Some(p) = st.queue.pop_front() {
                group.push(p);
            }
        }
        drop(st);

        let mut outcomes: Vec<(u64, Result<Table, ServeError>)> = Vec::new();
        let mut pool_delta = (0u64, 0u64);
        if let Some(first) = group.first() {
            let before = pool_mem::stats();
            match self.registry.get(&first.model) {
                Some(synth) => {
                    let specs: Vec<SynthSpec> = group.iter().map(|p| p.spec).collect();
                    match synth.synth_batch(&specs) {
                        Ok(tables) => {
                            for (p, t) in group.iter().zip(tables) {
                                outcomes.push((p.ticket, Ok(t)));
                            }
                        }
                        Err(e) => {
                            for p in &group {
                                outcomes.push((p.ticket, Err(ServeError::Invalid(e.clone()))));
                            }
                        }
                    }
                }
                None => {
                    for p in &group {
                        let model = p.model.clone();
                        outcomes.push((p.ticket, Err(ServeError::UnknownModel { model })));
                    }
                }
            }
            let after = pool_mem::stats();
            pool_delta = (
                after.hits.saturating_sub(before.hits),
                after.misses.saturating_sub(before.misses),
            );
        }

        let mut st = self.locked();
        let completed = outcomes.iter().filter(|(_, r)| r.is_ok()).count();
        resolved += outcomes.len();
        for (ticket, outcome) in outcomes {
            st.results.insert(ticket, outcome);
        }
        if !group.is_empty() {
            st.stats.groups += 1;
            st.stats.coalesced_requests += as_u64(group.len());
            st.stats.coalesced_rows += as_u64(group_rows);
            st.stats.completed += as_u64(completed);
            st.stats.batch_hist[hist_bucket(group.len())] += 1;
            st.stats.pool_hits += pool_delta.0;
            st.stats.pool_misses += pool_delta.1;
        }
        st.leading = false;
        drop(st);
        self.done.notify_all();
        resolved
    }

    /// Submits one request and blocks until its result is available —
    /// the in-process client handle. The calling thread cooperates in
    /// leader-combining: it runs batches itself whenever no other thread
    /// is leading, and otherwise parks on the engine's condvar.
    pub fn request(&self, req: &RowsRequest) -> Result<Table, ServeError> {
        let ticket = self.submit(req)?;
        loop {
            if let Some(result) = self.try_take(ticket) {
                return result;
            }
            if self.pump() > 0 {
                continue;
            }
            let st = self.locked();
            if st.results.contains_key(&ticket) {
                continue;
            }
            if !st.leading && !st.queue.is_empty() {
                // Lost a race: leadership freed between pump() and here.
                continue;
            }
            // Bounded park: wakes on batch completion (notify_all) and at
            // worst re-polls at the poll period, so a missed notification
            // can never hang the caller.
            let _ = self.done.wait_timeout(st, PARK_POLL).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Re-poll period for parked request() callers; wake-ups are normally
/// driven by the leader's notify_all, this only bounds the worst case.
const PARK_POLL: Duration = Duration::from_millis(20);

/// Deadline expiry in the transport's timeout shape: one millisecond of
/// `waited` stands for one engine tick.
fn expired(waited_ticks: u64, tick: u64) -> ServeError {
    let timeout = TransportError::Timeout {
        party: PartyId::Server,
        waited: Duration::from_millis(waited_ticks),
        round: Some(tick),
        expecting: None,
    };
    ServeError::Expired(timeout.with_expecting("SynthRows"))
}

/// Saturating usize→u64 for counters (lossless on every supported target).
fn as_u64(v: usize) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// log2 bucket index for a group of `n` requests, clamped to the table.
fn hist_bucket(n: usize) -> usize {
    let mut bucket = 0usize;
    let mut v = n.max(1);
    while v > 1 && bucket + 1 < HIST_BUCKETS {
        v >>= 1;
        bucket += 1;
    }
    bucket
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_are_log2() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 0);
        assert_eq!(hist_bucket(2), 1);
        assert_eq!(hist_bucket(3), 1);
        assert_eq!(hist_bucket(4), 2);
        assert_eq!(hist_bucket(usize::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn unknown_model_is_rejected_at_submit() {
        let service = SynthService::new(ModelRegistry::new(), ServeConfig::default());
        let req = RowsRequest {
            model: "nope".to_string(),
            spec: SynthSpec { n: 1, seed: 0, cond: None },
            deadline_ticks: None,
        };
        assert!(matches!(service.submit(&req), Err(ServeError::UnknownModel { .. })));
        assert_eq!(service.queue_depth(), 0);
    }
}
