//! Serve-session wire frames: the byte surface of `gtv-cli serve-synth`.
//!
//! Frames ride the same discipline as the party transport's wire-v2
//! framing (`gtv_vfl::socket::framing`): a little-endian `u32` length
//! prefix followed by an opcode-tagged body, bounded by
//! [`MAX_SERVE_BODY`], with every malformed input reported as a typed
//! [`TransportError::Frame`] — never a panic. The serve session speaks its
//! own opcode space so a synthesis client can never be confused with a
//! training party: the first frame on a connection must be
//! [`ServeFrame::SynthHello`], which a training node would reject as an
//! unknown opcode (and vice versa).
//!
//! The session state machine over these frames is linted by gtv-xtask's
//! L10 protocol-order pass (`SERVE_EDGES`); the variant set here is kept
//! in bijection with that machine by the serve wire-drift check.

use gtv_vfl::TransportError;

/// Serve-session protocol version, negotiated by `SynthHello`.
pub const SERVE_PROTOCOL: u32 = 1;

/// Upper bound on one frame body (mirrors the transport's framing bound:
/// a full gradient matrix plus header slack).
pub const MAX_SERVE_BODY: usize = (1 << 30) + 4096;

/// Longest accepted model name on the wire.
pub const MAX_MODEL_NAME: usize = 256;

/// Longest accepted error-reason string on the wire.
pub const MAX_REASON: usize = 512;

/// A conditional-vector choice carried by a request: one category of one
/// categorical column owned by one client (CTGAN-style conditioning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireCond {
    /// Index of the client that owns the conditioned column.
    pub client: u64,
    /// Client-local column index.
    pub column: u64,
    /// Category index within that column.
    pub category: u64,
}

/// One serve-session frame.
///
/// `SynthHello`/`SynthHelloAck` open a session; each `SynthRequest` is
/// answered by exactly one of `SynthRows` (the sampled table as CSV
/// bytes), `SynthBusy` (admission rejection with a retry hint) or
/// `SynthErr` (typed failure), correlated by the client-chosen `id` so
/// requests may be pipelined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeFrame {
    /// Client → server session opener carrying the protocol version.
    SynthHello {
        /// The client's [`SERVE_PROTOCOL`].
        protocol: u32,
    },
    /// Server → client hello acceptance.
    SynthHelloAck {
        /// The server's [`SERVE_PROTOCOL`].
        protocol: u32,
    },
    /// Client → server sampling request.
    SynthRequest {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// Registry name of the model to sample from.
        model: String,
        /// Number of rows requested.
        n: u64,
        /// Request seed; rows are bit-reproducible functions of it.
        seed: u64,
        /// Optional fixed condition (`None` samples per the original
        /// frequencies).
        cond: Option<WireCond>,
        /// Deadline in engine ticks (batch sequence numbers), 0 meaning
        /// "expire unless picked up by the very next batch".
        deadline_ticks: u64,
    },
    /// Server → client response: the sampled rows as CSV bytes.
    SynthRows {
        /// Correlation id of the answered request.
        id: u64,
        /// The synthesized table, CSV-encoded.
        csv: Vec<u8>,
    },
    /// Server → client admission rejection: the bounded queue is full.
    SynthBusy {
        /// Correlation id of the rejected request.
        id: u64,
        /// Queue depth observed at rejection.
        depth: u64,
        /// How many engine ticks to wait before retrying.
        retry_after_ticks: u64,
    },
    /// Server → client typed failure (bad request, expired deadline, …).
    SynthErr {
        /// Correlation id of the failed request (0 during handshake).
        id: u64,
        /// Human-readable failure reason.
        reason: String,
    },
}

impl ServeFrame {
    /// The variant name, as used by protocol-order diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeFrame::SynthHello { .. } => "SynthHello",
            ServeFrame::SynthHelloAck { .. } => "SynthHelloAck",
            ServeFrame::SynthRequest { .. } => "SynthRequest",
            ServeFrame::SynthRows { .. } => "SynthRows",
            ServeFrame::SynthBusy { .. } => "SynthBusy",
            ServeFrame::SynthErr { .. } => "SynthErr",
        }
    }
}

const OP_HELLO: u8 = 0x51;
const OP_HELLO_ACK: u8 = 0x52;
const OP_REQUEST: u8 = 0x53;
const OP_ROWS: u8 = 0x54;
const OP_BUSY: u8 = 0x55;
const OP_ERR: u8 = 0x56;

fn frame_err(detail: impl Into<String>) -> TransportError {
    TransportError::Frame { detail: detail.into() }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounded-length string/byte prefix: `u16` for names and reasons.
fn put_short_bytes(
    out: &mut Vec<u8>,
    b: &[u8],
    what: &str,
    cap: usize,
) -> Result<(), TransportError> {
    if b.len() > cap {
        return Err(frame_err(format!("{what} is {} bytes, cap {cap}", b.len())));
    }
    let len =
        u16::try_from(b.len()).map_err(|_| frame_err(format!("{what} length overflows u16")))?;
    put_u16(out, len);
    out.extend_from_slice(b);
    Ok(())
}

/// Encodes one frame body (no length prefix; the stream writer adds it).
///
/// Fails with a typed [`TransportError::Frame`] when a field exceeds its
/// wire bound (model name, reason string, CSV payload).
pub fn encode_serve_frame(frame: &ServeFrame) -> Result<Vec<u8>, TransportError> {
    let mut out = Vec::new();
    match frame {
        ServeFrame::SynthHello { protocol } => {
            out.push(OP_HELLO);
            put_u32(&mut out, *protocol);
        }
        ServeFrame::SynthHelloAck { protocol } => {
            out.push(OP_HELLO_ACK);
            put_u32(&mut out, *protocol);
        }
        ServeFrame::SynthRequest { id, model, n, seed, cond, deadline_ticks } => {
            out.push(OP_REQUEST);
            put_u64(&mut out, *id);
            put_u64(&mut out, *n);
            put_u64(&mut out, *seed);
            put_u64(&mut out, *deadline_ticks);
            match cond {
                Some(c) => {
                    out.push(1);
                    put_u64(&mut out, c.client);
                    put_u64(&mut out, c.column);
                    put_u64(&mut out, c.category);
                }
                None => out.push(0),
            }
            put_short_bytes(&mut out, model.as_bytes(), "model name", MAX_MODEL_NAME)?;
        }
        ServeFrame::SynthRows { id, csv } => {
            out.push(OP_ROWS);
            put_u64(&mut out, *id);
            if csv.len() > MAX_SERVE_BODY - 16 {
                return Err(frame_err(format!(
                    "CSV payload is {} bytes, cap {}",
                    csv.len(),
                    MAX_SERVE_BODY - 16
                )));
            }
            let len =
                u32::try_from(csv.len()).map_err(|_| frame_err("CSV length overflows u32"))?;
            put_u32(&mut out, len);
            out.extend_from_slice(csv);
        }
        ServeFrame::SynthBusy { id, depth, retry_after_ticks } => {
            out.push(OP_BUSY);
            put_u64(&mut out, *id);
            put_u64(&mut out, *depth);
            put_u64(&mut out, *retry_after_ticks);
        }
        ServeFrame::SynthErr { id, reason } => {
            out.push(OP_ERR);
            put_u64(&mut out, *id);
            put_short_bytes(&mut out, reason.as_bytes(), "error reason", MAX_REASON)?;
        }
    }
    Ok(out)
}

/// Bounds-checked little-endian cursor over one frame body.
struct Cur<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Self { b, off: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], TransportError> {
        let end = self.off.checked_add(n).filter(|&e| e <= self.b.len()).ok_or_else(|| {
            frame_err(format!("truncated frame: {what} needs {n} bytes at offset {}", self.off))
        })?;
        let s = &self.b[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, TransportError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, TransportError> {
        let s = self.take(2, what)?;
        let mut b = [0u8; 2];
        b.copy_from_slice(s);
        Ok(u16::from_le_bytes(b))
    }

    fn u32(&mut self, what: &str) -> Result<u32, TransportError> {
        let s = self.take(4, what)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self, what: &str) -> Result<u64, TransportError> {
        let s = self.take(8, what)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn short_str(&mut self, what: &str, cap: usize) -> Result<String, TransportError> {
        let len = usize::from(self.u16(what)?);
        if len > cap {
            return Err(frame_err(format!("{what} is {len} bytes, cap {cap}")));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| frame_err(format!("{what} is not UTF-8")))
    }

    fn done(&self, kind: &str) -> Result<(), TransportError> {
        if self.off == self.b.len() {
            Ok(())
        } else {
            Err(frame_err(format!("{} trailing bytes after {kind}", self.b.len() - self.off)))
        }
    }
}

/// Decodes one frame body (everything after the length prefix).
pub fn decode_serve_body(body: &[u8]) -> Result<ServeFrame, TransportError> {
    let mut cur = Cur::new(body);
    let op = cur.u8("opcode")?;
    let frame = match op {
        OP_HELLO => ServeFrame::SynthHello { protocol: cur.u32("protocol")? },
        OP_HELLO_ACK => ServeFrame::SynthHelloAck { protocol: cur.u32("protocol")? },
        OP_REQUEST => {
            let id = cur.u64("id")?;
            let n = cur.u64("n")?;
            let seed = cur.u64("seed")?;
            let deadline_ticks = cur.u64("deadline")?;
            let cond = match cur.u8("cond tag")? {
                0 => None,
                1 => Some(WireCond {
                    client: cur.u64("cond client")?,
                    column: cur.u64("cond column")?,
                    category: cur.u64("cond category")?,
                }),
                tag => return Err(frame_err(format!("bad cond tag {tag}"))),
            };
            let model = cur.short_str("model name", MAX_MODEL_NAME)?;
            ServeFrame::SynthRequest { id, model, n, seed, cond, deadline_ticks }
        }
        OP_ROWS => {
            let id = cur.u64("id")?;
            let len = cur.u32("csv length")?;
            let len = usize::try_from(len).map_err(|_| frame_err("csv length overflows usize"))?;
            if len > MAX_SERVE_BODY {
                return Err(frame_err(format!("csv length {len} exceeds body bound")));
            }
            let csv = cur.take(len, "csv payload")?.to_vec();
            ServeFrame::SynthRows { id, csv }
        }
        OP_BUSY => ServeFrame::SynthBusy {
            id: cur.u64("id")?,
            depth: cur.u64("depth")?,
            retry_after_ticks: cur.u64("retry")?,
        },
        OP_ERR => {
            let id = cur.u64("id")?;
            let reason = cur.short_str("error reason", MAX_REASON)?;
            ServeFrame::SynthErr { id, reason }
        }
        other => return Err(frame_err(format!("unknown serve opcode {other:#04x}"))),
    };
    cur.done(frame.kind())?;
    Ok(frame)
}

/// Incremental reassembly buffer for length-prefixed serve frames
/// (mirrors the transport's `FrameBuf`): feed raw socket chunks with
/// [`extend`](Self::extend), pull complete frames with
/// [`next_frame`](Self::next_frame).
#[derive(Debug, Default)]
pub struct ServeFrameBuf {
    buf: Vec<u8>,
}

impl ServeFrameBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read from the stream.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame, `Ok(None)` when more bytes are
    /// needed, or a typed error when the stream lost sync (oversized
    /// length prefix, malformed body).
    pub fn next_frame(&mut self) -> Result<Option<ServeFrame>, TransportError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let mut lb = [0u8; 4];
        lb.copy_from_slice(&self.buf[..4]);
        let body_len = usize::try_from(u32::from_le_bytes(lb))
            .map_err(|_| frame_err("length prefix overflows usize"))?;
        if body_len > MAX_SERVE_BODY {
            return Err(frame_err(format!("length prefix {body_len} exceeds {MAX_SERVE_BODY}")));
        }
        if self.buf.len() < 4 + body_len {
            return Ok(None);
        }
        let frame = decode_serve_body(&self.buf[4..4 + body_len])?;
        self.buf.drain(..4 + body_len);
        Ok(Some(frame))
    }
}

/// Encodes `frame` with its `u32` little-endian length prefix, ready to
/// write to a stream.
pub fn encode_serve_wire(frame: &ServeFrame) -> Result<Vec<u8>, TransportError> {
    let body = encode_serve_frame(frame)?;
    if body.len() > MAX_SERVE_BODY {
        return Err(frame_err(format!("frame body {} exceeds {MAX_SERVE_BODY}", body.len())));
    }
    let len = u32::try_from(body.len()).map_err(|_| frame_err("frame body overflows u32"))?;
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, len);
    out.extend_from_slice(&body);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exemplars() -> Vec<ServeFrame> {
        vec![
            ServeFrame::SynthHello { protocol: SERVE_PROTOCOL },
            ServeFrame::SynthHelloAck { protocol: SERVE_PROTOCOL },
            ServeFrame::SynthRequest {
                id: 7,
                model: "loan".to_string(),
                n: 128,
                seed: 42,
                cond: Some(WireCond { client: 1, column: 3, category: 2 }),
                deadline_ticks: 16,
            },
            ServeFrame::SynthRequest {
                id: 8,
                model: "adult".to_string(),
                n: 1,
                seed: 0,
                cond: None,
                deadline_ticks: 0,
            },
            ServeFrame::SynthRows { id: 7, csv: b"a,b\n1,2\n".to_vec() },
            ServeFrame::SynthBusy { id: 9, depth: 256, retry_after_ticks: 2 },
            ServeFrame::SynthErr { id: 9, reason: "unknown model \"x\"".to_string() },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for frame in exemplars() {
            let body = encode_serve_frame(&frame).expect("encode");
            let back = decode_serve_body(&body).expect("decode");
            assert_eq!(frame, back);
        }
    }

    #[test]
    fn frame_buf_reassembles_split_and_coalesced_chunks() {
        let mut wire = Vec::new();
        for frame in exemplars() {
            wire.extend_from_slice(&encode_serve_wire(&frame).expect("encode"));
        }
        let mut fb = ServeFrameBuf::new();
        let mut got = Vec::new();
        // Feed in awkward 3-byte slivers so every length prefix and body
        // is split across chunk boundaries at least once.
        for chunk in wire.chunks(3) {
            fb.extend(chunk);
            while let Some(f) = fb.next_frame().expect("frame") {
                got.push(f);
            }
        }
        assert_eq!(got, exemplars());
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn oversized_fields_are_rejected_at_encode_time() {
        let long_model = ServeFrame::SynthRequest {
            id: 1,
            model: "m".repeat(MAX_MODEL_NAME + 1),
            n: 1,
            seed: 0,
            cond: None,
            deadline_ticks: 0,
        };
        assert!(encode_serve_frame(&long_model).is_err());
        let long_reason = ServeFrame::SynthErr { id: 1, reason: "r".repeat(MAX_REASON + 1) };
        assert!(encode_serve_frame(&long_reason).is_err());
    }

    #[test]
    fn malformed_bodies_get_typed_errors_not_panics() {
        // Truncations at every prefix of a valid body.
        let body = encode_serve_frame(&exemplars()[2]).expect("encode");
        for cut in 0..body.len() {
            match decode_serve_body(&body[..cut]) {
                Ok(f) => panic!("truncated body decoded as {f:?}"),
                Err(TransportError::Frame { .. }) => {}
                Err(e) => panic!("unexpected error kind {e:?}"),
            }
        }
        // Unknown opcode.
        assert!(matches!(decode_serve_body(&[0xff]), Err(TransportError::Frame { .. })));
        // Trailing garbage.
        let mut noisy = encode_serve_frame(&exemplars()[0]).expect("encode");
        noisy.push(0);
        assert!(matches!(decode_serve_body(&noisy), Err(TransportError::Frame { .. })));
        // Oversized length prefix loses the stream.
        let mut fb = ServeFrameBuf::new();
        fb.extend(&u32::MAX.to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(TransportError::Frame { .. })));
    }
}
