//! # gtv-serve
//!
//! Synthesis-as-a-service on top of the trained GTV generator: a model
//! registry of cached, pool-warmed [`gtv::Synthesizer`]s, a batching
//! request engine with bounded admission and tick-denominated deadlines,
//! and a length-delimited wire surface (`gtv-cli serve-synth`).
//!
//! The load-bearing property is **batching invariance**: a request's rows
//! are a bit-exact function of `(model, cond, n, seed)` no matter how the
//! engine groups requests into forward passes, how the batch is chunked,
//! or how many worker threads run the kernels (DESIGN.md §14). That is
//! what lets the engine coalesce aggressively — throughput decisions can
//! never change an answer.
//!
//! * [`ModelRegistry`] — named generator instances rebuilt once from
//!   trained weights, with buffer-pool warming;
//! * [`SynthService`] — leader-combining coalescer: bounded queue,
//!   same-model batching, per-request results; [`SynthService::request`]
//!   is the blocking in-process client handle;
//! * [`SynthServer`] / [`ServeConn`] — the socket server and client
//!   speaking [`ServeFrame`]s.

mod engine;
mod registry;
mod server;
mod wire;

pub use engine::{RowsRequest, ServeConfig, ServeError, ServeStats, SynthService, HIST_BUCKETS};
pub use registry::ModelRegistry;
pub use server::{ServeConn, SynthServer};
pub use wire::{
    decode_serve_body, encode_serve_frame, encode_serve_wire, ServeFrame, ServeFrameBuf, WireCond,
    MAX_MODEL_NAME, MAX_REASON, MAX_SERVE_BODY, SERVE_PROTOCOL,
};
